module Machine = Vmk_hw.Machine
module Cpu = Vmk_hw.Cpu
module Arch = Vmk_hw.Arch
module Tlb = Vmk_hw.Tlb
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Engine = Vmk_sim.Engine

type tid = int

type lock = {
  lname : string;
  mutable free_at : int64;
      (** Global virtual time at which the previous critical section ends;
          an acquirer arriving earlier spins for the difference. *)
  mutable acquisitions : int;
  mutable contended : int;
  mutable spin_cycles : int64;
}

(* Cross-core hardware costs that are not per-architecture: these model
   the shared-fabric side (cache-line transfer, spinlock probe, shootdown
   bookkeeping); the per-arch side (IPI delivery, shootdown ack handler)
   comes from Arch.profile. *)
let yield_cost = 20
let lock_base_cost = 40
let cacheline_delay = 60
let ipi_post_cost = 80
let shootdown_base_cost = 150
let shootdown_per_core_cost = 80
let far = Int64.max_int

type reply = R_unit | R_msg of int

type call =
  | Burn of int
  | Yield
  | Recv
  | Send of { dst : tid; tag : int; cycles : int }
  | Locked of { lk : lock; cycles : int }
  | Shootdown of { pages : int }

type _ Effect.t += Invoke : call -> reply Effect.t

type state = Ready | Running | Blocked | Done

type mail = { visible_at : int64; mseq : int; mtag : int }

type thread = {
  tid : tid;
  name : string;
  account : string;
  cpu : int;
  weight : int;
  mutable credit : int;
  mutable st : state;
  mutable cont : (reply, unit) Effect.Deep.continuation option;
  mutable pending : reply;
  mutable body : (unit -> unit) option;
  mutable burn_left : int;
  mutable ready_at : int64;
      (** Earliest global time this thread may next run: message
          visibility for receivers, [far] while parked with an empty
          mailbox. *)
  mutable waiting_recv : bool;
  mutable mailbox : mail list;  (** Sorted by (visible_at, send seq). *)
}

type core = {
  hw : Cpu.t;
  mutable threads : thread list;  (** Pinned here, in spawn order. *)
  mutable pending_ipi : int;
      (** Deferred interrupt-handler cycles this core owes before its
          next dispatch, one bucket per cause. *)
  mutable pending_irq : int;
  mutable pending_shootdown : int;
}

(* Pre-resolved counter ids for the cross-core hot path (E21): IPC
   posts, IPIs, lock spins and shootdowns fire per message or per
   acquisition. Spawn and crash counters stay string-keyed (cold). *)
type hot_ids = {
  id_irq : int;
  id_ipi : int;
  id_spin_cycles : int;
  id_shootdown : int;
  id_shootdown_pages : int;
  id_shootdown_acks : int;
}

type t = {
  mach : Machine.t;
  ids : hot_ids;
  quantum : int;
  cores : core array;
  tbl : (tid, thread) Hashtbl.t;
  mutable next_tid : int;
  mutable next_seq : int;
  mutable round_end : int64;
}

type stop_reason = Idle | Condition | Rounds

let create ?(quantum = 1000) mach =
  if quantum < 1 then invalid_arg "Smp.create: quantum must be positive";
  let cores =
    Array.init (Machine.ncpus mach) (fun i ->
        {
          hw = Machine.cpu mach i;
          threads = [];
          pending_ipi = 0;
          pending_irq = 0;
          pending_shootdown = 0;
        })
  in
  let c = mach.Machine.counters in
  {
    mach;
    ids =
      {
        id_irq = Counter.id c "smp.irq";
        id_ipi = Counter.id c "smp.ipi";
        id_spin_cycles = Counter.id c "smp.spin.cycles";
        id_shootdown = Counter.id c "smp.shootdown";
        id_shootdown_pages = Counter.id c "smp.shootdown.pages";
        id_shootdown_acks = Counter.id c "smp.shootdown.acks";
      };
    quantum;
    cores;
    tbl = Hashtbl.create 32;
    next_tid = 1;
    next_seq = 0;
    round_end = 0L;
  }

let machine t = t.mach
let ncpus t = Array.length t.cores
let credit_cap weight = 8 * weight

let spawn t ~name ?account ~cpu ?(weight = 1) body =
  if cpu < 0 || cpu >= Array.length t.cores then
    invalid_arg "Smp.spawn: bad cpu index";
  if weight < 1 then invalid_arg "Smp.spawn: weight must be positive";
  let tid = t.next_tid in
  t.next_tid <- t.next_tid + 1;
  let th =
    {
      tid;
      name;
      account = Option.value account ~default:name;
      cpu;
      weight;
      credit = weight;
      st = Ready;
      cont = None;
      pending = R_unit;
      body = Some body;
      burn_left = 0;
      ready_at = 0L;
      waiting_recv = false;
      mailbox = [];
    }
  in
  Hashtbl.add t.tbl tid th;
  let core = t.cores.(cpu) in
  core.threads <- core.threads @ [ th ];
  Counter.incr t.mach.Machine.counters "smp.spawn";
  tid

(* --- mailboxes --- *)

let insert_mail th m =
  let earlier x = (x.visible_at, x.mseq) <= (m.visible_at, m.mseq) in
  let rec go = function
    | x :: rest when earlier x -> x :: go rest
    | l -> m :: l
  in
  th.mailbox <- go th.mailbox

let pop_visible th now =
  match th.mailbox with
  | m :: rest when Int64.compare m.visible_at now <= 0 ->
      th.mailbox <- rest;
      Some m.mtag
  | _ -> None

let park_recv th now =
  th.waiting_recv <- true;
  match th.mailbox with
  | m :: _ ->
      th.st <- Ready;
      th.ready_at <- (if Int64.compare m.visible_at now > 0 then m.visible_at else now)
  | [] ->
      th.st <- Blocked;
      th.ready_at <- far

let deliver t dst ~visible ~tag =
  let m = { visible_at = visible; mseq = t.next_seq; mtag = tag } in
  t.next_seq <- t.next_seq + 1;
  insert_mail dst m;
  if dst.waiting_recv then begin
    if dst.st = Blocked then dst.st <- Ready;
    if Int64.compare visible dst.ready_at < 0 then dst.ready_at <- visible
  end

let post t ?irq_cost ~dst tag =
  match Hashtbl.find_opt t.tbl dst with
  | None -> ()
  | Some d when d.st = Done -> ()
  | Some d ->
      let cost =
        Option.value irq_cost ~default:t.mach.Machine.arch.Arch.irq_entry_cost
      in
      let core = t.cores.(d.cpu) in
      core.pending_irq <- core.pending_irq + cost;
      Counter.incr_id t.mach.Machine.counters t.ids.id_irq;
      deliver t d ~visible:(Engine.now t.mach.Machine.engine) ~tag

(* --- syscall-style handling --- *)

let make_ready th ~at reply =
  th.pending <- reply;
  th.st <- Ready;
  th.ready_at <- at

let rec handle t core th call =
  let arch = t.mach.Machine.arch in
  let counters = t.mach.Machine.counters in
  let hw = core.hw in
  match call with
  | Burn n ->
      (* Pure computation: consumed one quantum-slice per dispatch so the
         per-core scheduler can preempt long stretches. *)
      th.burn_left <- max 0 n;
      make_ready th ~at:hw.Cpu.now R_unit
  | Yield ->
      Machine.burn_on t.mach ~cpu:hw yield_cost;
      make_ready th ~at:t.round_end R_unit
  | Recv -> park_recv th hw.Cpu.now
  | Send { dst; tag; cycles } -> begin
      Machine.burn_on t.mach ~cpu:hw cycles;
      match Hashtbl.find_opt t.tbl dst with
      | None | Some { st = Done; _ } ->
          (* Dead-letter: the sender is not blocked on a corpse. *)
          make_ready th ~at:hw.Cpu.now R_unit
      | Some d ->
          let visible =
            if d.cpu = th.cpu then hw.Cpu.now
            else if d.st = Blocked && d.waiting_recv then begin
              (* Target core sleeps in recv: wake it with an IPI. The
                 sender pays the post; the target core owes the delivery
                 cost before its next dispatch. *)
              Machine.burn_on t.mach ~cpu:hw ipi_post_cost;
              let tcore = t.cores.(d.cpu) in
              tcore.pending_ipi <- tcore.pending_ipi + arch.Arch.ipi_cost;
              Counter.incr_id counters t.ids.id_ipi;
              Int64.add hw.Cpu.now (Int64.of_int arch.Arch.ipi_cost)
            end
            else
              (* Busy remote core polls its mailbox: the message is
                 visible after one cache-line transfer. *)
              Int64.add hw.Cpu.now (Int64.of_int cacheline_delay)
          in
          deliver t d ~visible ~tag;
          make_ready th ~at:hw.Cpu.now R_unit
    end
  | Locked { lk; cycles } ->
      Machine.burn_on t.mach ~cpu:hw lock_base_cost;
      lk.acquisitions <- lk.acquisitions + 1;
      let now0 = hw.Cpu.now in
      if Int64.compare lk.free_at now0 > 0 then begin
        let spin = Int64.sub lk.free_at now0 in
        lk.contended <- lk.contended + 1;
        lk.spin_cycles <- Int64.add lk.spin_cycles spin;
        Accounts.charge_on t.mach.Machine.accounts ~cpu:th.cpu "smp.spin" spin;
        Counter.add_id counters t.ids.id_spin_cycles (Int64.to_int spin);
        Cpu.advance hw (Int64.to_int spin)
      end;
      Machine.burn_on t.mach ~cpu:hw cycles;
      lk.free_at <- hw.Cpu.now;
      make_ready th ~at:hw.Cpu.now R_unit
  | Shootdown { pages } ->
      let n = Array.length t.cores in
      Counter.incr_id counters t.ids.id_shootdown;
      Counter.add_id counters t.ids.id_shootdown_pages (max 0 pages);
      let cost =
        if n > 1 then
          shootdown_base_cost
          + ((n - 1) * shootdown_per_core_cost)
          (* send the IPI round and wait for the last ack *)
          + arch.Arch.ipi_cost + arch.Arch.shootdown_ack_cost
        else shootdown_base_cost
      in
      Machine.burn_on t.mach ~cpu:hw cost;
      Array.iter
        (fun c ->
          if c.hw.Cpu.id <> th.cpu then begin
            c.pending_shootdown <-
              c.pending_shootdown + arch.Arch.shootdown_ack_cost;
            Tlb.flush_all c.hw.Cpu.tlb;
            Counter.incr_id counters t.ids.id_shootdown_acks
          end)
        t.cores;
      make_ready th ~at:hw.Cpu.now R_unit

and start_fiber t core th body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> th.st <- Done);
      exnc =
        (fun _exn ->
          Counter.incr t.mach.Machine.counters "smp.thread.crashed";
          th.st <- Done);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Invoke call ->
              Some
                (fun (kont : (a, unit) continuation) ->
                  th.cont <- Some kont;
                  handle t core th call)
          | _ -> None);
    }

and continue_thread t core th =
  match th.body with
  | Some body ->
      th.body <- None;
      start_fiber t core th body
  | None -> (
      match th.cont with
      | Some kont ->
          th.cont <- None;
          Effect.Deep.continue kont th.pending
      | None -> th.st <- Done)

let dispatch t core th =
  th.st <- Running;
  Accounts.switch_to t.mach.Machine.accounts th.account;
  if th.waiting_recv then begin
    match pop_visible th core.hw.Cpu.now with
    | Some tag ->
        th.waiting_recv <- false;
        th.pending <- R_msg tag;
        continue_thread t core th
    | None -> park_recv th core.hw.Cpu.now
  end
  else if th.burn_left > 0 then begin
    let step = min th.burn_left t.quantum in
    Machine.burn_on t.mach ~cpu:core.hw step;
    th.burn_left <- th.burn_left - step;
    if th.st = Running then begin
      th.st <- Ready;
      th.ready_at <- core.hw.Cpu.now
    end
  end
  else continue_thread t core th

(* --- per-core scheduling --- *)

let pick core now =
  List.fold_left
    (fun best th ->
      if th.st = Ready && Int64.compare th.ready_at now <= 0 then
        match best with
        | Some b when b.credit >= th.credit -> best
        | Some _ | None -> Some th
      else best)
    None core.threads

let earliest_ready core =
  List.fold_left
    (fun acc th ->
      if th.st = Ready then
        match acc with
        | Some a when Int64.compare a th.ready_at <= 0 -> acc
        | Some _ | None -> Some th.ready_at
      else acc)
    None core.threads

let run_core t core ~round_start =
  let hw = core.hw in
  if Int64.compare hw.Cpu.now round_start < 0 then hw.Cpu.now <- round_start;
  (* Settle deferred cross-core interrupt work before dispatching. *)
  let did = ref false in
  let pay amount account =
    if amount > 0 then begin
      Accounts.charge_on t.mach.Machine.accounts ~cpu:hw.Cpu.id account
        (Int64.of_int amount);
      Cpu.advance hw amount;
      (* Absorbing deferred interrupt work is progress: it can push this
         core past the round end, and the global loop must keep burning
         quanta until the core re-enters a round window. *)
      did := true
    end
  in
  pay core.pending_ipi "smp.ipi";
  core.pending_ipi <- 0;
  pay core.pending_irq "smp.irq";
  core.pending_irq <- 0;
  pay core.pending_shootdown "smp.shootdown";
  core.pending_shootdown <- 0;
  let rec loop () =
    if Int64.compare hw.Cpu.now t.round_end < 0 then begin
      match pick core hw.Cpu.now with
      | Some th ->
          let before = hw.Cpu.now in
          dispatch t core th;
          let used = Int64.to_int (Int64.sub hw.Cpu.now before) in
          th.credit <- th.credit - used;
          did := true;
          loop ()
      | None -> (
          (* Nobody runnable right now; skip forward within the quantum
             if someone becomes runnable before it ends. *)
          match earliest_ready core with
          | Some at
            when Int64.compare at t.round_end < 0
                 && Int64.compare at hw.Cpu.now > 0 ->
              hw.Cpu.now <- at;
              loop ()
          | Some _ | None -> ())
    end
  in
  loop ();
  !did

let run ?until ?(max_rounds = 2_000_000) ?(tickless = true) t =
  let eng = t.mach.Machine.engine in
  let stop () = match until with Some f -> f () | None -> false in
  let refill () =
    Array.iter
      (fun core ->
        List.iter
          (fun th ->
            if th.st <> Done then
              th.credit <- min (credit_cap th.weight) (th.credit + th.weight))
          core.threads)
      t.cores
  in
  (* Earliest finite wake-up among parked-but-scheduled threads, for
     skipping dead quanta. A thread cannot run before its own core's
     local clock either — a core that overshot the round (long atomic
     op, deferred IPI work) drags its threads' effective wake-up with
     it, so the engine must catch up to the core, not the reverse. *)
  let next_wakeup () =
    Array.fold_left
      (fun acc core ->
        List.fold_left
          (fun acc th ->
            if th.st = Ready && Int64.compare th.ready_at far < 0 then
              let cand =
                if Int64.compare core.hw.Cpu.now th.ready_at > 0 then
                  core.hw.Cpu.now
                else th.ready_at
              in
              match acc with
              | Some a when Int64.compare a cand <= 0 -> acc
              | Some _ | None -> Some cand
            else acc)
          acc core.threads)
      None t.cores
  in
  let rec loop rounds =
    if stop () then Condition
    else if rounds >= max_rounds then Rounds
    else begin
      let round_start = Engine.now eng in
      t.round_end <- Int64.add round_start (Int64.of_int t.quantum);
      refill ();
      let did = ref false in
      Array.iter
        (fun core -> if run_core t core ~round_start then did := true)
        t.cores;
      if !did then begin
        Engine.burn eng (Int64.of_int t.quantum);
        loop (rounds + 1)
      end
      else
        let target =
          match (Engine.next_due eng, next_wakeup ()) with
          | None, None -> None
          | (Some _ as a), None -> a
          | None, (Some _ as b) -> b
          | Some a, Some b -> Some (if Int64.compare a b <= 0 then a else b)
        in
        match target with
        | None -> Idle
        | Some tgt ->
            let delta = Int64.sub tgt (Engine.now eng) in
            (* Always at least one cycle so the loop can never stall on a
               stale target. With [tickless] off the gap is crossed in
               quantum-sized hops that stop exactly at the target — same
               clock at every dispatch, just more rounds. The test
               suite's equivalence property leans on this. *)
            let delta = if Int64.compare delta 1L > 0 then delta else 1L in
            let step =
              if tickless then begin
                if Int64.compare delta (Int64.of_int t.quantum) > 0 then
                  Engine.note_idle eng
                    (Int64.sub delta (Int64.of_int t.quantum));
                delta
              end
              else if Int64.compare delta (Int64.of_int t.quantum) > 0 then
                Int64.of_int t.quantum
              else delta
            in
            Engine.burn eng step;
            loop (rounds + 1)
    end
  in
  let reason = loop 0 in
  Accounts.switch_to t.mach.Machine.accounts "idle";
  reason

(* --- thread operations (inside fibers) --- *)

let invoke call = Effect.perform (Invoke call)
let burn n = ignore (invoke (Burn n))
let yield () = ignore (invoke Yield)

let recv () =
  match invoke Recv with R_msg tag -> tag | R_unit -> -1

let send ~dst ~tag ~cycles = ignore (invoke (Send { dst; tag; cycles }))
let locked lk ~cycles = ignore (invoke (Locked { lk; cycles }))
let shootdown ~pages = ignore (invoke (Shootdown { pages }))

(* --- locks --- *)

let lock_create _t ~name =
  { lname = name; free_at = 0L; acquisitions = 0; contended = 0; spin_cycles = 0L }

let lock_name lk = lk.lname
let lock_acquisitions lk = lk.acquisitions
let lock_contended lk = lk.contended
let lock_spin_cycles lk = lk.spin_cycles

let is_done t tid =
  match Hashtbl.find_opt t.tbl tid with
  | Some th -> th.st = Done
  | None -> true
