(** Deterministic, engine-scheduled fault plans (E13).

    A {!plan} is data: device fault windows, IRQ storms and component
    kills at fixed virtual times. {!arm} installs it on a machine —
    device windows go to {!Vmk_hw.Disk}/{!Vmk_hw.Nic}, storms and kills
    become engine events. Every stochastic choice draws from a stream
    split off the machine's seeded RNG at arm time, so the same
    (seed, plan) pair replays bit-for-bit — the property E13's
    determinism check asserts.

    Kills are delegated to the caller through the [kill] callback
    (mapping a target name to {!Vmk_ukernel.Kernel.kill},
    {!Vmk_vmm.Hypervisor.kill_domain}, …), which keeps this library free
    of kernel/VMM dependencies and lets one plan type drive both
    stacks. *)

type disk_window = {
  d_start : int64;  (** Absolute virtual time, inclusive. *)
  d_stop : int64;  (** Exclusive. *)
  d_mode : Vmk_hw.Disk.fault_mode;  (** [Fail] (media error) or [Drop]. *)
  d_pct : int;  (** Per-request fault probability, percent. *)
  d_sectors : (int * int) option;  (** Bad-sector range, or whole disk. *)
}

type nic_window = {
  n_start : int64;
  n_stop : int64;
  n_mode : Vmk_hw.Nic.fault_mode;  (** [Drop], [Corrupt] or [Duplicate]. *)
  n_pct : int;  (** Per-packet fault probability, percent. *)
}

(** Resource-exhaustion notifications delivered through the arm-time
    [pressure] callback. Like [kill], the mapping to a concrete
    mechanism is the caller's ({!Vmk_vmm.Hypervisor.set_grant_cap},
    {!Vmk_vmm.Ring.set_limit}, frame-table allocation, ...), keeping
    this library free of kernel/VMM dependencies. *)
type pressure =
  | Grant_cap of int option
      (** Clamp ([Some cap]) or restore ([None]) the grant-table size. *)
  | Ring_cap of int option
      (** Clamp or restore the effective I/O-ring capacity. *)
  | Steal_frames of int
      (** Memory pressure: take this many frames away. *)

(** Mid-migration failures (E20), delivered through the arm-time
    [migration] callback. Like [kill] and [pressure], the mapping onto
    the live migration session is the caller's
    ({!Vmk_migrate.Migrate.inject}), keeping this library free of
    protocol dependencies. *)
type mig_action =
  | Mig_src_dead  (** The source's migration daemon dies mid-round. *)
  | Mig_dst_reject  (** The destination refuses to accept the guest. *)
  | Mig_link_drop  (** The transfer link goes down. *)

type event =
  | Disk_faults of disk_window list
  | Nic_faults of nic_window list
  | Irq_storm of { line : int; at : int64; count : int; gap : int64 }
      (** [count] raises of [line], [gap] cycles apart, starting at [at]. *)
  | Kill_at of { at : int64; target : string }
      (** Invoke the arm-time [kill] callback on [target] at time [at]. *)
  | Kill_window of { k_start : int64; k_stop : int64; k_target : string }
      (** One kill of [k_target] at an instant drawn uniformly from
          [\[k_start, k_stop)] off the plan's split RNG stream — a pure
          function of (machine seed, plan). *)
  | Grant_squeeze of { g_start : int64; g_stop : int64; g_cap : int }
      (** Grant-table exhaustion window: [Grant_cap (Some g_cap)] at
          [g_start], [Grant_cap None] at [g_stop]. *)
  | Ring_squeeze of { r_start : int64; r_stop : int64; r_cap : int }
      (** Ring-saturation window: clamp ring capacity to [r_cap]. *)
  | Memory_pressure of { m_at : int64; m_frames : int; m_victim : string }
      (** OOM at [m_at]: [Steal_frames m_frames] through [pressure],
          then kill [m_victim] (recorded in [kills_fired]). *)
  | Mig_fault of { mig_at : int64; mig_action : mig_action }
      (** Invoke the arm-time [migration] callback at [mig_at]. *)

type plan = event list

exception Invalid_plan of string
(** Raised by {!validate} (and so by {!arm}) on a malformed plan, with a
    message naming the offending event. *)

val validate : ?horizon:int64 -> ?targets:string list -> plan -> unit
(** Reject malformed plans before they are installed: negative-duration
    windows (which would silently never fire), fault percentages outside
    0..100, negative storm counts/gaps/times, and overlapping fault
    windows on the same target — two disk windows covering intersecting
    time spans and sector ranges, two time-overlapping NIC windows, or
    two overlapping squeezes of the same resource (where the earlier
    restore would silently lift the later cap). Kills interlock: a
    [Kill_at] (or [Memory_pressure] victim) falling inside an
    already-listed [Kill_window] on the same target is rejected — one of
    the two would fire into a corpse — as are two overlapping
    [Kill_window]s on one target, and a [Kill_window] that covers an
    earlier-listed [Kill_at]. With [horizon] (the run's end time), any
    window extending past it or instant scheduled at/after it is
    rejected: such an event never takes effect on a run that stops
    there, so the plan lies about its coverage. When [targets] names the
    killable components of the scenario, every [Kill_at]/[Kill_window]
    target and [Memory_pressure] victim must appear in it — a typo'd or
    stale name is caught here instead of firing into the void mid-run.
    @raise Invalid_plan on the first violation found. *)

type armed = {
  plan : plan;
  mutable kills_fired : (string * int64) list;
      (** (target, virtual time) of every kill that has fired, newest
          first. *)
  mutable handles : Vmk_sim.Engine.handle list;
      (** Scheduled engine events still subject to {!disarm}. *)
}

val arm :
  ?pressure:(pressure -> unit) ->
  ?migration:(mig_action -> unit) ->
  ?horizon:int64 ->
  ?targets:string list ->
  plan ->
  Vmk_hw.Machine.t ->
  kill:(string -> unit) ->
  armed
(** Install the plan: set the device fault windows and schedule storms,
    kills and resource squeezes on the machine's engine. Counters:
    ["faults.irq_storm"], ["faults.kill"], ["faults.grant_squeeze"],
    ["faults.ring_squeeze"], ["faults.mem_pressure"],
    ["faults.mig_fault"]. [pressure] and [migration] default to no-ops;
    [horizon] and [targets] are passed through to {!validate}.
    @raise Invalid_plan if the plan fails {!validate}. *)

val disarm : armed -> Vmk_hw.Machine.t -> unit
(** Clear the device fault windows and cancel every scheduled storm,
    kill and squeeze that has not fired yet. *)

val kill_times : armed -> string -> int64 list
(** Fire times recorded for a target, oldest first. *)

val first_kill_time : armed -> string -> int64 option
