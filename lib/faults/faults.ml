module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Nic = Vmk_hw.Nic
module Irq = Vmk_hw.Irq
module Engine = Vmk_sim.Engine
module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter

type disk_window = {
  d_start : int64;
  d_stop : int64;
  d_mode : Disk.fault_mode;
  d_pct : int;
  d_sectors : (int * int) option;
}

type nic_window = {
  n_start : int64;
  n_stop : int64;
  n_mode : Nic.fault_mode;
  n_pct : int;
}

type pressure =
  | Grant_cap of int option
  | Ring_cap of int option
  | Steal_frames of int

type mig_action = Mig_src_dead | Mig_dst_reject | Mig_link_drop

type event =
  | Disk_faults of disk_window list
  | Nic_faults of nic_window list
  | Irq_storm of { line : int; at : int64; count : int; gap : int64 }
  | Kill_at of { at : int64; target : string }
  | Kill_window of { k_start : int64; k_stop : int64; k_target : string }
  | Grant_squeeze of { g_start : int64; g_stop : int64; g_cap : int }
  | Ring_squeeze of { r_start : int64; r_stop : int64; r_cap : int }
  | Memory_pressure of { m_at : int64; m_frames : int; m_victim : string }
  | Mig_fault of { mig_at : int64; mig_action : mig_action }

type plan = event list

type armed = {
  plan : plan;
  mutable kills_fired : (string * int64) list;  (** Newest first. *)
  mutable handles : Engine.handle list;
      (** Every scheduled storm tick / kill / squeeze edge, so
          {!disarm} can cancel the ones that have not fired yet. *)
}

exception Invalid_plan of string

let invalid fmt = Printf.ksprintf (fun msg -> raise (Invalid_plan msg)) fmt

(* Half-open [start, stop) windows. *)
let spans_overlap a_start a_stop b_start b_stop =
  Int64.compare a_start b_stop < 0 && Int64.compare b_start a_stop < 0

let sectors_overlap a b =
  match (a, b) with
  | None, _ | _, None -> true (* whole-disk windows hit every range *)
  | Some (a_lo, a_hi), Some (b_lo, b_hi) -> a_lo <= b_hi && b_lo <= a_hi

(* Arm time is the last moment a bad plan is cheap: a negative-duration
   window silently never fires, and overlapping windows on one target
   shadow each other (the device consults the first matching window), so
   both are rejected with a message naming the offender. *)
let validate ?horizon ?targets plan =
  (* With a known universe of kill targets, a typo'd or stale name is
     caught at arm time instead of firing into the void mid-run. *)
  let check_target what name =
    match targets with
    | None -> ()
    | Some known ->
        if not (List.mem name known) then
          invalid "%s targets unknown component %S (known: %s)" what name
            (String.concat ", " known)
  in
  (* A window past the horizon (or an instant at/after it) never takes
     effect on a run that ends there — the plan lies about coverage. *)
  let check_horizon_stop what stop =
    match horizon with
    | Some h when Int64.compare stop h > 0 ->
        invalid "%s window extends to %Ld, past plan horizon %Ld" what stop h
    | Some _ | None -> ()
  in
  let check_horizon_at what at =
    match horizon with
    | Some h when Int64.compare at h >= 0 ->
        invalid "%s scheduled at %Ld, at or past plan horizon %Ld" what at h
    | Some _ | None -> ()
  in
  let check_span what start stop =
    if Int64.compare stop start < 0 then
      invalid "%s window [%Ld, %Ld) has negative duration" what start stop;
    check_horizon_stop what stop
  in
  let check_pct what pct =
    if pct < 0 || pct > 100 then invalid "%s fault pct %d outside 0..100" what pct
  in
  let disk_windows = ref [] and nic_windows = ref [] in
  let grant_windows = ref [] and ring_windows = ref [] in
  let kill_windows = ref [] and kill_instants = ref [] in
  (* A kill landing inside an armed kill window on the same target is
     shadowed: whichever fires first leaves the other killing a corpse.
     Reject the plan instead of silently absorbing the second kill. *)
  let check_kill_instant what at target =
    List.iter
      (fun (w_start, w_stop, w_target) ->
        if
          String.equal target w_target
          && Int64.compare w_start at <= 0
          && Int64.compare at w_stop < 0
        then
          invalid
            "%s of %s at %Ld falls inside kill window [%Ld, %Ld) on the same \
             target (shadowed)"
            what target at w_start w_stop)
      !kill_windows;
    kill_instants := (at, target) :: !kill_instants
  in
  List.iter
    (fun event ->
      match event with
      | Disk_faults windows ->
          List.iter
            (fun w ->
              check_span "disk" w.d_start w.d_stop;
              check_pct "disk" w.d_pct;
              (match w.d_sectors with
              | Some (lo, hi) when lo > hi ->
                  invalid "disk window sector range [%d, %d] is empty" lo hi
              | Some _ | None -> ());
              List.iter
                (fun prev ->
                  if
                    spans_overlap w.d_start w.d_stop prev.d_start prev.d_stop
                    && sectors_overlap w.d_sectors prev.d_sectors
                  then
                    invalid
                      "disk windows [%Ld, %Ld) and [%Ld, %Ld) overlap on the \
                       same sectors"
                      prev.d_start prev.d_stop w.d_start w.d_stop)
                !disk_windows;
              disk_windows := w :: !disk_windows)
            windows
      | Nic_faults windows ->
          List.iter
            (fun w ->
              check_span "nic" w.n_start w.n_stop;
              check_pct "nic" w.n_pct;
              List.iter
                (fun prev ->
                  if spans_overlap w.n_start w.n_stop prev.n_start prev.n_stop
                  then
                    invalid "nic windows [%Ld, %Ld) and [%Ld, %Ld) overlap"
                      prev.n_start prev.n_stop w.n_start w.n_stop)
                !nic_windows;
              nic_windows := w :: !nic_windows)
            windows
      | Irq_storm { line; at; count; gap } ->
          if at < 0L then invalid "irq storm starts at negative time %Ld" at;
          if count < 0 then invalid "irq storm has negative count %d" count;
          if gap < 0L then invalid "irq storm has negative gap %Ld" gap;
          if count > 0 then
            check_horizon_at "irq storm last tick"
              (Int64.add at (Int64.mul (Int64.of_int (count - 1)) gap));
          ignore line
      | Kill_at { at; target } ->
          if at < 0L then
            invalid "kill of %s scheduled at negative time %Ld" target at;
          check_horizon_at "kill" at;
          check_target "kill" target;
          check_kill_instant "kill" at target
      | Kill_window { k_start; k_stop; k_target } ->
          check_span "kill" k_start k_stop;
          if k_start < 0L then
            invalid "kill window of %s starts at negative time %Ld" k_target
              k_start;
          if Int64.equal k_start k_stop then
            invalid "kill window of %s at [%Ld, %Ld) is empty" k_target
              k_start k_stop;
          check_target "kill window" k_target;
          List.iter
            (fun (prev_start, prev_stop, prev_target) ->
              if
                String.equal k_target prev_target
                && spans_overlap k_start k_stop prev_start prev_stop
              then
                invalid
                  "kill windows [%Ld, %Ld) and [%Ld, %Ld) overlap on target %s"
                  prev_start prev_stop k_start k_stop k_target)
            !kill_windows;
          List.iter
            (fun (at, target) ->
              if
                String.equal target k_target
                && Int64.compare k_start at <= 0
                && Int64.compare at k_stop < 0
              then
                invalid
                  "kill window [%Ld, %Ld) on %s covers the kill already \
                   scheduled at %Ld (shadowed)"
                  k_start k_stop k_target at)
            !kill_instants;
          kill_windows := (k_start, k_stop, k_target) :: !kill_windows
      | Grant_squeeze { g_start; g_stop; g_cap } ->
          check_span "grant squeeze" g_start g_stop;
          if g_cap < 0 then invalid "grant squeeze cap %d is negative" g_cap;
          List.iter
            (fun (prev_start, prev_stop) ->
              if spans_overlap g_start g_stop prev_start prev_stop then
                invalid
                  "grant squeezes [%Ld, %Ld) and [%Ld, %Ld) overlap (the \
                   second restore would lift the first cap early)"
                  prev_start prev_stop g_start g_stop)
            !grant_windows;
          grant_windows := (g_start, g_stop) :: !grant_windows
      | Ring_squeeze { r_start; r_stop; r_cap } ->
          check_span "ring squeeze" r_start r_stop;
          if r_cap < 0 then invalid "ring squeeze cap %d is negative" r_cap;
          List.iter
            (fun (prev_start, prev_stop) ->
              if spans_overlap r_start r_stop prev_start prev_stop then
                invalid "ring squeezes [%Ld, %Ld) and [%Ld, %Ld) overlap"
                  prev_start prev_stop r_start r_stop)
            !ring_windows;
          ring_windows := (r_start, r_stop) :: !ring_windows
      | Memory_pressure { m_at; m_frames; m_victim } ->
          if m_at < 0L then
            invalid "memory pressure at negative time %Ld" m_at;
          if m_frames < 0 then
            invalid "memory pressure steals negative frames %d (victim %s)"
              m_frames m_victim;
          check_horizon_at "memory pressure" m_at;
          check_target "memory pressure" m_victim;
          check_kill_instant "memory-pressure kill" m_at m_victim
      | Mig_fault { mig_at; mig_action = _ } ->
          if mig_at < 0L then
            invalid "migration fault at negative time %Ld" mig_at;
          check_horizon_at "migration fault" mig_at)
    plan

let kill_times t target =
  List.filter_map
    (fun (name, at) -> if name = target then Some at else None)
    t.kills_fired
  |> List.rev

let first_kill_time t target =
  match kill_times t target with [] -> None | at :: _ -> Some at

(* Each fault window gets its own stream split off the machine RNG at arm
   time, in plan order — the draw sequence is a pure function of
   (machine seed, plan). *)
let arm ?(pressure = fun (_ : pressure) -> ())
    ?(migration = fun (_ : mig_action) -> ()) ?horizon ?targets plan mach
    ~kill =
  validate ?horizon ?targets plan;
  let engine = mach.Machine.engine in
  let armed = { plan; kills_fired = []; handles = [] } in
  let schedule at f =
    armed.handles <- Engine.at_cancellable engine at f :: armed.handles
  in
  let disk_faults = ref [] and nic_faults = ref [] in
  List.iter
    (fun event ->
      match event with
      | Disk_faults windows ->
          List.iter
            (fun w ->
              disk_faults :=
                {
                  Disk.f_start = w.d_start;
                  f_stop = w.d_stop;
                  f_mode = w.d_mode;
                  f_pct = w.d_pct;
                  f_rng = Rng.split mach.Machine.rng;
                  f_sectors = w.d_sectors;
                }
                :: !disk_faults)
            windows
      | Nic_faults windows ->
          List.iter
            (fun w ->
              nic_faults :=
                {
                  Nic.f_start = w.n_start;
                  f_stop = w.n_stop;
                  f_mode = w.n_mode;
                  f_pct = w.n_pct;
                  f_rng = Rng.split mach.Machine.rng;
                }
                :: !nic_faults)
            windows
      | Irq_storm { line; at; count; gap } ->
          for i = 0 to count - 1 do
            schedule
              (Int64.add at (Int64.mul (Int64.of_int i) gap))
              (fun () ->
                Counter.incr mach.Machine.counters "faults.irq_storm";
                Irq.raise_line mach.Machine.irq line)
          done
      | Kill_at { at; target } ->
          schedule at (fun () ->
              Counter.incr mach.Machine.counters "faults.kill";
              armed.kills_fired <-
                (target, Engine.now engine) :: armed.kills_fired;
              kill target)
      | Kill_window { k_start; k_stop; k_target } ->
          (* The instant is drawn from the window's own split stream at
             arm time, so it is a pure function of (seed, plan) like
             every other stochastic choice. *)
          let rng = Rng.split mach.Machine.rng in
          let at = Rng.int64_range rng k_start (Int64.pred k_stop) in
          schedule at (fun () ->
              Counter.incr mach.Machine.counters "faults.kill";
              armed.kills_fired <-
                (k_target, Engine.now engine) :: armed.kills_fired;
              kill k_target)
      | Grant_squeeze { g_start; g_stop; g_cap } ->
          schedule g_start (fun () ->
              Counter.incr mach.Machine.counters "faults.grant_squeeze";
              pressure (Grant_cap (Some g_cap)));
          schedule g_stop (fun () -> pressure (Grant_cap None))
      | Ring_squeeze { r_start; r_stop; r_cap } ->
          schedule r_start (fun () ->
              Counter.incr mach.Machine.counters "faults.ring_squeeze";
              pressure (Ring_cap (Some r_cap)));
          schedule r_stop (fun () -> pressure (Ring_cap None))
      | Memory_pressure { m_at; m_frames; m_victim } ->
          schedule m_at (fun () ->
              Counter.incr mach.Machine.counters "faults.mem_pressure";
              pressure (Steal_frames m_frames);
              armed.kills_fired <-
                (m_victim, Engine.now engine) :: armed.kills_fired;
              kill m_victim)
      | Mig_fault { mig_at; mig_action } ->
          schedule mig_at (fun () ->
              Counter.incr mach.Machine.counters "faults.mig_fault";
              migration mig_action))
    plan;
  Disk.set_faults mach.Machine.disk (List.rev !disk_faults);
  Nic.set_faults mach.Machine.nic (List.rev !nic_faults);
  armed

let disarm armed mach =
  List.iter Engine.cancel armed.handles;
  armed.handles <- [];
  Disk.set_faults mach.Machine.disk [];
  Nic.set_faults mach.Machine.nic []
