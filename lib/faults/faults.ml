module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Nic = Vmk_hw.Nic
module Irq = Vmk_hw.Irq
module Engine = Vmk_sim.Engine
module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter

type disk_window = {
  d_start : int64;
  d_stop : int64;
  d_mode : Disk.fault_mode;
  d_pct : int;
  d_sectors : (int * int) option;
}

type nic_window = {
  n_start : int64;
  n_stop : int64;
  n_mode : Nic.fault_mode;
  n_pct : int;
}

type pressure =
  | Grant_cap of int option
  | Ring_cap of int option
  | Steal_frames of int

type event =
  | Disk_faults of disk_window list
  | Nic_faults of nic_window list
  | Irq_storm of { line : int; at : int64; count : int; gap : int64 }
  | Kill_at of { at : int64; target : string }
  | Grant_squeeze of { g_start : int64; g_stop : int64; g_cap : int }
  | Ring_squeeze of { r_start : int64; r_stop : int64; r_cap : int }
  | Memory_pressure of { m_at : int64; m_frames : int; m_victim : string }

type plan = event list

type armed = {
  plan : plan;
  mutable kills_fired : (string * int64) list;  (** Newest first. *)
  mutable handles : Engine.handle list;
      (** Every scheduled storm tick / kill / squeeze edge, so
          {!disarm} can cancel the ones that have not fired yet. *)
}

let kill_times t target =
  List.filter_map
    (fun (name, at) -> if name = target then Some at else None)
    t.kills_fired
  |> List.rev

let first_kill_time t target =
  match kill_times t target with [] -> None | at :: _ -> Some at

(* Each fault window gets its own stream split off the machine RNG at arm
   time, in plan order — the draw sequence is a pure function of
   (machine seed, plan). *)
let arm ?(pressure = fun (_ : pressure) -> ()) plan mach ~kill =
  let engine = mach.Machine.engine in
  let armed = { plan; kills_fired = []; handles = [] } in
  let schedule at f =
    armed.handles <- Engine.at_cancellable engine at f :: armed.handles
  in
  let disk_faults = ref [] and nic_faults = ref [] in
  List.iter
    (fun event ->
      match event with
      | Disk_faults windows ->
          List.iter
            (fun w ->
              disk_faults :=
                {
                  Disk.f_start = w.d_start;
                  f_stop = w.d_stop;
                  f_mode = w.d_mode;
                  f_pct = w.d_pct;
                  f_rng = Rng.split mach.Machine.rng;
                  f_sectors = w.d_sectors;
                }
                :: !disk_faults)
            windows
      | Nic_faults windows ->
          List.iter
            (fun w ->
              nic_faults :=
                {
                  Nic.f_start = w.n_start;
                  f_stop = w.n_stop;
                  f_mode = w.n_mode;
                  f_pct = w.n_pct;
                  f_rng = Rng.split mach.Machine.rng;
                }
                :: !nic_faults)
            windows
      | Irq_storm { line; at; count; gap } ->
          for i = 0 to count - 1 do
            schedule
              (Int64.add at (Int64.mul (Int64.of_int i) gap))
              (fun () ->
                Counter.incr mach.Machine.counters "faults.irq_storm";
                Irq.raise_line mach.Machine.irq line)
          done
      | Kill_at { at; target } ->
          schedule at (fun () ->
              Counter.incr mach.Machine.counters "faults.kill";
              armed.kills_fired <-
                (target, Engine.now engine) :: armed.kills_fired;
              kill target)
      | Grant_squeeze { g_start; g_stop; g_cap } ->
          schedule g_start (fun () ->
              Counter.incr mach.Machine.counters "faults.grant_squeeze";
              pressure (Grant_cap (Some g_cap)));
          schedule g_stop (fun () -> pressure (Grant_cap None))
      | Ring_squeeze { r_start; r_stop; r_cap } ->
          schedule r_start (fun () ->
              Counter.incr mach.Machine.counters "faults.ring_squeeze";
              pressure (Ring_cap (Some r_cap)));
          schedule r_stop (fun () -> pressure (Ring_cap None))
      | Memory_pressure { m_at; m_frames; m_victim } ->
          schedule m_at (fun () ->
              Counter.incr mach.Machine.counters "faults.mem_pressure";
              pressure (Steal_frames m_frames);
              armed.kills_fired <-
                (m_victim, Engine.now engine) :: armed.kills_fired;
              kill m_victim))
    plan;
  Disk.set_faults mach.Machine.disk (List.rev !disk_faults);
  Nic.set_faults mach.Machine.nic (List.rev !nic_faults);
  armed

let disarm armed mach =
  List.iter Engine.cancel armed.handles;
  armed.handles <- [];
  Disk.set_faults mach.Machine.disk [];
  Nic.set_faults mach.Machine.nic []
