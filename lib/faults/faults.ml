module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Nic = Vmk_hw.Nic
module Irq = Vmk_hw.Irq
module Engine = Vmk_sim.Engine
module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter

type disk_window = {
  d_start : int64;
  d_stop : int64;
  d_mode : Disk.fault_mode;
  d_pct : int;
  d_sectors : (int * int) option;
}

type nic_window = {
  n_start : int64;
  n_stop : int64;
  n_mode : Nic.fault_mode;
  n_pct : int;
}

type event =
  | Disk_faults of disk_window list
  | Nic_faults of nic_window list
  | Irq_storm of { line : int; at : int64; count : int; gap : int64 }
  | Kill_at of { at : int64; target : string }

type plan = event list

type armed = {
  plan : plan;
  mutable kills_fired : (string * int64) list;  (** Newest first. *)
}

let kill_times t target =
  List.filter_map
    (fun (name, at) -> if name = target then Some at else None)
    t.kills_fired
  |> List.rev

let first_kill_time t target =
  match kill_times t target with [] -> None | at :: _ -> Some at

(* Each fault window gets its own stream split off the machine RNG at arm
   time, in plan order — the draw sequence is a pure function of
   (machine seed, plan). *)
let arm plan mach ~kill =
  let engine = mach.Machine.engine in
  let armed = { plan; kills_fired = [] } in
  let disk_faults = ref [] and nic_faults = ref [] in
  List.iter
    (fun event ->
      match event with
      | Disk_faults windows ->
          List.iter
            (fun w ->
              disk_faults :=
                {
                  Disk.f_start = w.d_start;
                  f_stop = w.d_stop;
                  f_mode = w.d_mode;
                  f_pct = w.d_pct;
                  f_rng = Rng.split mach.Machine.rng;
                  f_sectors = w.d_sectors;
                }
                :: !disk_faults)
            windows
      | Nic_faults windows ->
          List.iter
            (fun w ->
              nic_faults :=
                {
                  Nic.f_start = w.n_start;
                  f_stop = w.n_stop;
                  f_mode = w.n_mode;
                  f_pct = w.n_pct;
                  f_rng = Rng.split mach.Machine.rng;
                }
                :: !nic_faults)
            windows
      | Irq_storm { line; at; count; gap } ->
          for i = 0 to count - 1 do
            Engine.at engine
              (Int64.add at (Int64.mul (Int64.of_int i) gap))
              (fun () ->
                Counter.incr mach.Machine.counters "faults.irq_storm";
                Irq.raise_line mach.Machine.irq line)
          done
      | Kill_at { at; target } ->
          Engine.at engine at (fun () ->
              Counter.incr mach.Machine.counters "faults.kill";
              armed.kills_fired <-
                (target, Engine.now engine) :: armed.kills_fired;
              kill target))
    plan;
  Disk.set_faults mach.Machine.disk (List.rev !disk_faults);
  Nic.set_faults mach.Machine.nic (List.rev !nic_faults);
  armed

let disarm mach =
  Disk.set_faults mach.Machine.disk [];
  Nic.set_faults mach.Machine.nic []
