(* Streaming quantile estimators for datacenter-scale runs (E22).

   [Sketch] is an HDR-histogram-style log-linear bucket sketch over
   non-negative integer samples (cycle latencies): fixed memory, O(1)
   add, bounded *relative* error 2^-bits, and — crucially for per-core
   shards — *exact* mergeability: merging shard sketches is elementwise
   bucket addition, so merge-of-shards is bit-identical to feeding one
   sketch the concatenated stream in any order. That property is what
   lets Exp_e22 keep one sketch per SMP core with no cross-core locks
   and still report global p50/p99/p999.

   [P2] is the classic Jain & Chlamtac P-squared estimator (CACM '85):
   five markers, parabolic interpolation, O(1) memory for a *single*
   pre-declared quantile. Kept as the textbook alternative and for
   spot-checking the bucket sketch; it is not mergeable. *)

module Sketch = struct
  type t = {
    bits : int; (* subbucket (mantissa) bits: relative error <= 2^-bits *)
    counts : int array;
    mutable count : int;
    mutable min : int;
    mutable max : int;
    mutable sum : float;
  }

  let nbuckets bits =
    (* Values below 2^bits get exact unit buckets; above, each power-of-two
       decade [2^p, 2^(p+1)) splits into 2^bits subbuckets. p ranges up to
       62 on a 63-bit native int, so (64 - bits) decades cover everything. *)
    (64 - bits) lsl bits

  let create ?(bits = 7) () =
    if bits < 1 || bits > 20 then invalid_arg "Quantile.Sketch.create: bits";
    {
      bits;
      counts = Array.make (nbuckets bits) 0;
      count = 0;
      min = max_int;
      max = 0;
      sum = 0.0;
    }

  let[@inline] msb v =
    (* Position of the highest set bit of [v >= 1], branch-light. *)
    let v = ref v and p = ref 0 in
    if !v lsr 32 <> 0 then (p := !p + 32; v := !v lsr 32);
    if !v lsr 16 <> 0 then (p := !p + 16; v := !v lsr 16);
    if !v lsr 8 <> 0 then (p := !p + 8; v := !v lsr 8);
    if !v lsr 4 <> 0 then (p := !p + 4; v := !v lsr 4);
    if !v lsr 2 <> 0 then (p := !p + 2; v := !v lsr 2);
    if !v lsr 1 <> 0 then p := !p + 1;
    !p

  let[@inline] index t v =
    if v < 1 lsl t.bits then v
    else
      let shift = msb v - t.bits in
      ((shift + 1) lsl t.bits) + ((v lsr shift) - (1 lsl t.bits))

  (* Midpoint representative of bucket [i]; exact for the unit buckets. *)
  let repr t i =
    if i < 1 lsl t.bits then i
    else
      let shift = (i lsr t.bits) - 1 in
      let mant = i land ((1 lsl t.bits) - 1) in
      let lo = ((1 lsl t.bits) + mant) lsl shift in
      lo + ((1 lsl shift) / 2)

  let add t v =
    if v < 0 then invalid_arg "Quantile.Sketch.add: negative sample";
    t.counts.(index t v) <- t.counts.(index t v) + 1;
    t.count <- t.count + 1;
    if v < t.min then t.min <- v;
    if v > t.max then t.max <- v;
    t.sum <- t.sum +. float_of_int v

  let count t = t.count
  let min_value t = if t.count = 0 then 0 else t.min
  let max_value t = t.max
  let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Quantile.Sketch.quantile: q";
    if t.count = 0 then 0.0
    else begin
      (* Nearest-rank: smallest bucket whose cumulative count reaches
         ceil(q * n); clamp to the exact observed [min, max] so degenerate
         streams (all-equal samples) come back exact. *)
      let target =
        let r = int_of_float (ceil (q *. float_of_int t.count)) in
        if r < 1 then 1 else if r > t.count then t.count else r
      in
      let n = Array.length t.counts in
      let cum = ref 0 and i = ref 0 and found = ref 0 in
      (try
         while !i < n do
           cum := !cum + t.counts.(!i);
           if !cum >= target then begin
             found := !i;
             raise Exit
           end;
           incr i
         done
       with Exit -> ());
      let v = repr t !found in
      let v = if v < t.min then t.min else if v > t.max then t.max else v in
      float_of_int v
    end

  let merge_into ~into src =
    if into.bits <> src.bits then
      invalid_arg "Quantile.Sketch.merge_into: bits mismatch";
    Array.iteri
      (fun i c -> if c > 0 then into.counts.(i) <- into.counts.(i) + c)
      src.counts;
    into.count <- into.count + src.count;
    if src.count > 0 then begin
      if src.min < into.min then into.min <- src.min;
      if src.max > into.max then into.max <- src.max
    end;
    into.sum <- into.sum +. src.sum

  let fingerprint t =
    let h = ref (Hashtbl.hash (t.bits, t.count, t.min, t.max)) in
    Array.iteri
      (fun i c -> if c > 0 then h := Hashtbl.hash (!h, i, c))
      t.counts;
    !h
end

module P2 = struct
  type t = {
    p : float;
    q : float array; (* marker heights *)
    n : int array; (* marker positions (1-based ranks) *)
    np : float array; (* desired positions *)
    dn : float array; (* desired-position increments *)
    mutable count : int;
    init : float array; (* first five observations, pre-steady-state *)
  }

  let create p =
    if p <= 0.0 || p >= 1.0 then invalid_arg "Quantile.P2.create: p in (0,1)";
    {
      p;
      q = Array.make 5 0.0;
      n = [| 1; 2; 3; 4; 5 |];
      np = [| 1.0; 1.0 +. (2.0 *. p); 1.0 +. (4.0 *. p); 3.0 +. (2.0 *. p); 5.0 |];
      dn = [| 0.0; p /. 2.0; p; (1.0 +. p) /. 2.0; 1.0 |];
      count = 0;
      init = Array.make 5 0.0;
    }

  let parabolic t i d =
    let q = t.q and n = t.n in
    let fi = float_of_int in
    q.(i)
    +. d
       /. fi (n.(i + 1) - n.(i - 1))
       *. (((fi (n.(i) - n.(i - 1)) +. d)
            *. (q.(i + 1) -. q.(i))
            /. fi (n.(i + 1) - n.(i)))
          +. ((fi (n.(i + 1) - n.(i)) -. d)
             *. (q.(i) -. q.(i - 1))
             /. fi (n.(i) - n.(i - 1))))

  let linear t i d =
    let j = i + int_of_float d in
    t.q.(i) +. (d *. (t.q.(j) -. t.q.(i)) /. float_of_int (t.n.(j) - t.n.(i)))

  let add t x =
    if t.count < 5 then begin
      t.init.(t.count) <- x;
      t.count <- t.count + 1;
      if t.count = 5 then begin
        Array.sort compare t.init;
        Array.blit t.init 0 t.q 0 5
      end
    end
    else begin
      let k =
        if x < t.q.(0) then begin
          t.q.(0) <- x;
          0
        end
        else if x >= t.q.(4) then begin
          t.q.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 1 to 3 do
            if x >= t.q.(i) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        t.n.(i) <- t.n.(i) + 1
      done;
      for i = 0 to 4 do
        t.np.(i) <- t.np.(i) +. t.dn.(i)
      done;
      (* Adjust interior markers toward their desired positions. *)
      for i = 1 to 3 do
        let d = t.np.(i) -. float_of_int t.n.(i) in
        if
          (d >= 1.0 && t.n.(i + 1) - t.n.(i) > 1)
          || (d <= -1.0 && t.n.(i - 1) - t.n.(i) < -1)
        then begin
          let s = if d >= 0.0 then 1.0 else -1.0 in
          let qi = parabolic t i s in
          let qi =
            if t.q.(i - 1) < qi && qi < t.q.(i + 1) then qi else linear t i s
          in
          t.q.(i) <- qi;
          t.n.(i) <- t.n.(i) + int_of_float s
        end
      done;
      t.count <- t.count + 1
    end

  let count t = t.count

  let value t =
    if t.count = 0 then 0.0
    else if t.count < 5 then begin
      (* Pre-steady-state: exact nearest-rank over the buffered samples. *)
      let buf = Array.sub t.init 0 t.count in
      Array.sort compare buf;
      let r = int_of_float (ceil (t.p *. float_of_int t.count)) in
      let r = if r < 1 then 1 else if r > t.count then t.count else r in
      buf.(r - 1)
    end
    else t.q.(2)
end
