(** Streaming quantile estimators: fixed memory, online, built for the
    million-sample runs of E22 where O(n) sample buffers are off-limits. *)

module Sketch : sig
  (** Log-linear bucket sketch over non-negative integer samples with
      bounded relative error [2^-bits] and {e exact} mergeability:
      merging per-shard sketches is elementwise bucket addition, so the
      merged sketch is bit-identical to a single sketch fed the
      concatenated stream in any order. *)

  type t

  val create : ?bits:int -> unit -> t
  (** [create ?bits ()] — [bits] (default 7) is the subbucket mantissa
      width; quantile estimates are within relative error [2^-bits].
      Values below [2^bits] are stored exactly. *)

  val add : t -> int -> unit
  (** O(1), allocation-free. Raises [Invalid_argument] on negatives. *)

  val count : t -> int
  val min_value : t -> int
  val max_value : t -> int
  val mean : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0,1]: nearest-rank estimate, clamped to
      the exact observed [min,max] (so constant streams are exact).
      Returns [0.0] on an empty sketch. *)

  val merge_into : into:t -> t -> unit
  (** Elementwise bucket addition; raises on [bits] mismatch. *)

  val fingerprint : t -> int
  (** Deterministic digest of the full bucket state, for bit-for-bit
      replay checks. *)
end

module P2 : sig
  (** Jain & Chlamtac's P-squared single-quantile estimator: five
      markers, parabolic interpolation, O(1) memory. Not mergeable —
      use {!Sketch} for sharded collection. *)

  type t

  val create : float -> t
  (** [create p] for the target quantile [p] in (0,1). *)

  val add : t -> float -> unit
  val count : t -> int

  val value : t -> float
  (** Current estimate; exact (nearest-rank over the buffered samples)
      while fewer than five observations have arrived. *)
end
