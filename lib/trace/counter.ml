(* Interned counters (E21): a name is resolved once to a dense integer
   id, and the hot path bumps a flat [int array] cell — no string
   hashing, no [option] allocation, nothing on the minor heap. The
   string API survives as a compatibility shim that interns on first
   use, so cold paths (faults, revocation, toolstack) can stay
   readable. *)

type set = {
  index : (string, int) Hashtbl.t;  (* name -> id *)
  mutable names : string array;  (* id -> name *)
  mutable values : int array;  (* id -> value *)
  mutable n : int;  (* ids in use *)
}

let create_set () =
  {
    index = Hashtbl.create 64;
    names = Array.make 64 "";
    values = Array.make 64 0;
    n = 0;
  }

let grow set =
  let cap = Array.length set.values in
  let names = Array.make (2 * cap) "" in
  let values = Array.make (2 * cap) 0 in
  Array.blit set.names 0 names 0 set.n;
  Array.blit set.values 0 values 0 set.n;
  set.names <- names;
  set.values <- values

let id set name =
  (* [Hashtbl.find] + [Not_found] (a constant constructor) rather than
     [find_opt]: the hit path allocates nothing, so even un-interned
     string call sites stay off the minor heap. *)
  match Hashtbl.find set.index name with
  | i -> i
  | exception Not_found ->
      let i = set.n in
      if i = Array.length set.values then grow set;
      set.names.(i) <- name;
      set.values.(i) <- 0;
      set.n <- i + 1;
      Hashtbl.add set.index name i;
      i

let incr_id set i = set.values.(i) <- set.values.(i) + 1

let add_id set i amount =
  if amount < 0 then invalid_arg "Counter.add: negative amount";
  set.values.(i) <- set.values.(i) + amount

let get_id set i = set.values.(i)
let name set i = set.names.(i)
let incr set name = incr_id set (id set name)
let add set name amount = add_id set (id set name) amount

let get set name =
  match Hashtbl.find set.index name with
  | i -> set.values.(i)
  | exception Not_found -> 0

let reset set = Array.fill set.values 0 set.n 0

let to_list set =
  let acc = ref [] in
  for i = set.n - 1 downto 0 do
    if set.values.(i) <> 0 then acc := (set.names.(i), set.values.(i)) :: !acc
  done;
  (* Names are unique, so sorting the pairs sorts by name — dumps stay
     stable whatever order the names were interned in. *)
  List.sort compare !acc

let dump = to_list

let fold set ~init ~f =
  List.fold_left (fun acc (name, v) -> f acc name v) init (to_list set)

let matching set ~prefix =
  let starts_with s =
    String.length s >= String.length prefix
    && String.sub s 0 (String.length prefix) = prefix
  in
  List.filter (fun (name, _) -> starts_with name) (to_list set)

let sum_matching set ~prefix =
  List.fold_left (fun acc (_, v) -> acc + v) 0 (matching set ~prefix)

let pp ppf set =
  List.iter (fun (name, v) -> Format.fprintf ppf "%s = %d@." name v) (to_list set)
