(** Per-protection-domain CPU-cycle accounting.

    The central instrument behind experiments E3 and E8: every cycle burnt
    in the simulator is charged to exactly one account ("dom0", "guest1",
    "vmm", "ukernel", "idle", …), so CPU shares fall out as ratios of
    account balances.

    Every charge also lands in a per-CPU bucket (cpu 0 unless the [_on]
    variants say otherwise), so SMP experiments can itemize where each
    account's cycles were spent core by core. *)

type t
(** A set of named cycle accounts with a current-account pointer. *)

val create : unit -> t
(** Fresh account set; the current account starts as ["idle"]. *)

val charge : t -> string -> int64 -> unit
(** [charge t name cycles] adds [cycles] to [name]'s balance, in the
    cpu-0 bucket.

    @raise Invalid_argument on a negative charge. *)

val charge_on : t -> cpu:int -> string -> int64 -> unit
(** Like {!charge} but lands in the given core's bucket.

    @raise Invalid_argument on a negative charge or cpu index. *)

val charge_current : t -> int64 -> unit
(** Charge the account selected by {!switch_to}, on cpu 0. *)

val charge_current_on : t -> cpu:int -> int64 -> unit
(** Charge the current account on the given core. *)

val switch_to : t -> string -> unit
(** Select the account that subsequent {!charge_current} calls hit. *)

val current : t -> string

val with_account : t -> string -> (unit -> 'a) -> 'a
(** Run a thunk with the current account temporarily switched — the pattern
    for "this stretch of work executes inside the VMM / Dom0 / the guest".
    Restores the previous account even on exceptions. *)

val swap : t -> string -> string
(** Switch the current account and return the previous one — the
    closure-free {!with_account} for hot paths. The caller must
    {!restore} the returned account; nothing restores it on an
    exception, so only bracket code that cannot raise. *)

val restore : t -> string -> unit
(** Undo a {!swap}. *)

val balance : t -> string -> int64
(** Cycles charged to [name] so far, over all cores; [0L] if never
    charged. *)

val cpu_balance : t -> cpu:int -> string -> int64
(** [name]'s cycles in one core's bucket; [0L] for unknown accounts or
    cores never charged. *)

val cpus_seen : t -> int
(** 1 + the highest core index any charge has hit (so ≥ 1). *)

val total : t -> int64
(** Sum over all accounts. *)

val busy_total : t -> int64
(** Sum over all accounts except ["idle"]. *)

val share : t -> string -> float
(** [share t name] is [name]'s fraction of {!busy_total}, in [0,1];
    [0.] when nothing has been charged. *)

val reset : t -> unit
val to_list : t -> (string * int64) list
(** Non-zero balances, sorted by name. *)

val to_cpu_list : t -> cpu:int -> (string * int64) list
(** Non-zero balances in one core's bucket, sorted by name. *)

val pp : Format.formatter -> t -> unit

val pp_per_cpu : Format.formatter -> t -> unit
(** Per-core breakdown: one block per core with non-zero charges. *)
