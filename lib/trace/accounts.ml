type cell = { mutable total : int64; mutable by_cpu : int64 array }

type t = {
  balances : (string, cell) Hashtbl.t;
  mutable current : string;
  mutable max_cpu : int;  (* highest cpu index ever charged *)
}

let idle = "idle"
let create () = { balances = Hashtbl.create 16; current = idle; max_cpu = 0 }

let cell t name =
  match Hashtbl.find_opt t.balances name with
  | Some c -> c
  | None ->
      let c = { total = 0L; by_cpu = Array.make 1 0L } in
      Hashtbl.add t.balances name c;
      c

let ensure_cpu c cpu =
  let n = Array.length c.by_cpu in
  if cpu >= n then begin
    let by_cpu = Array.make (cpu + 1) 0L in
    Array.blit c.by_cpu 0 by_cpu 0 n;
    c.by_cpu <- by_cpu
  end

let charge_on t ~cpu name cycles =
  if Int64.compare cycles 0L < 0 then invalid_arg "Accounts.charge: negative";
  if cpu < 0 then invalid_arg "Accounts.charge: negative cpu";
  let c = cell t name in
  ensure_cpu c cpu;
  c.total <- Int64.add c.total cycles;
  c.by_cpu.(cpu) <- Int64.add c.by_cpu.(cpu) cycles;
  if cpu > t.max_cpu then t.max_cpu <- cpu

let charge t name cycles = charge_on t ~cpu:0 name cycles
let charge_current t cycles = charge t t.current cycles
let charge_current_on t ~cpu cycles = charge_on t ~cpu t.current cycles
let switch_to t name = t.current <- name
let current t = t.current

let with_account t name f =
  let previous = t.current in
  t.current <- name;
  Fun.protect ~finally:(fun () -> t.current <- previous) f

(* Closure-free account switching for hot paths: callers save the
   previous account and restore it themselves. Unlike {!with_account}
   there is no [Fun.protect] — only use where the charged section
   cannot raise (plain burns), or restore from an exception handler. *)
let[@inline] swap t name =
  let previous = t.current in
  t.current <- name;
  previous

let[@inline] restore t previous = t.current <- previous

let balance t name =
  match Hashtbl.find_opt t.balances name with Some c -> c.total | None -> 0L

let cpu_balance t ~cpu name =
  match Hashtbl.find_opt t.balances name with
  | Some c when cpu >= 0 && cpu < Array.length c.by_cpu -> c.by_cpu.(cpu)
  | Some _ | None -> 0L

let cpus_seen t = t.max_cpu + 1

let total t = Hashtbl.fold (fun _ c acc -> Int64.add acc c.total) t.balances 0L

let busy_total t =
  Hashtbl.fold
    (fun name c acc -> if name = idle then acc else Int64.add acc c.total)
    t.balances 0L

let share t name =
  let busy = busy_total t in
  if Int64.compare busy 0L = 0 then 0.0
  else Int64.to_float (balance t name) /. Int64.to_float busy

let reset t =
  Hashtbl.iter
    (fun _ c ->
      c.total <- 0L;
      Array.fill c.by_cpu 0 (Array.length c.by_cpu) 0L)
    t.balances;
  t.current <- idle;
  t.max_cpu <- 0

let to_list t =
  Hashtbl.fold
    (fun name c acc ->
      if Int64.compare c.total 0L <> 0 then (name, c.total) :: acc else acc)
    t.balances []
  |> List.sort compare

let to_cpu_list t ~cpu =
  Hashtbl.fold
    (fun name c acc ->
      let v =
        if cpu >= 0 && cpu < Array.length c.by_cpu then c.by_cpu.(cpu) else 0L
      in
      if Int64.compare v 0L <> 0 then (name, v) :: acc else acc)
    t.balances []
  |> List.sort compare

let pp ppf t =
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-12s %12Ld cycles (%.1f%%)@." name v (100.0 *. share t name))
    (to_list t)

let pp_per_cpu ppf t =
  for cpu = 0 to t.max_cpu do
    match to_cpu_list t ~cpu with
    | [] -> ()
    | rows ->
        Format.fprintf ppf "cpu%d:@." cpu;
        List.iter
          (fun (name, v) -> Format.fprintf ppf "  %-14s %12Ld cycles@." name v)
          rows
  done
