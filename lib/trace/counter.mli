(** Named integer counters.

    Kernels and device models bump counters ("ipc.rendezvous",
    "grant.transfer", "nic.rx_irq", …); the comparison framework reads them
    to classify events under the paper's §2.2 taxonomy. A [Counter.set] is a
    flat namespace owned by one machine, so scenarios never share state.

    Hot paths intern a name once with {!id} at wiring time and bump the
    resulting integer id with {!incr_id}/{!add_id} — a plain array store,
    nothing allocated. The string functions remain as a shim that interns
    on first use (and whose hit path is also allocation-free). *)

type set
(** A namespace of counters. *)

val create_set : unit -> set

val id : set -> string -> int
(** Intern a counter name, creating its cell at zero first if needed.
    The id is dense, stable for the lifetime of the set, and private to
    this set. Resolve once at wiring time; never on a per-packet path. *)

val incr_id : set -> int -> unit
(** Bump an interned counter by one — a single array store. *)

val add_id : set -> int -> int -> unit
(** Bump an interned counter by an arbitrary (non-negative) amount.

    @raise Invalid_argument on a negative amount. *)

val get_id : set -> int -> int
(** Current value of an interned counter. *)

val name : set -> int -> string
(** The name an id was interned under. *)

val incr : set -> string -> unit
(** Bump a counter by one, creating it at zero first if needed. *)

val add : set -> string -> int -> unit
(** Bump by an arbitrary (non-negative) amount.

    @raise Invalid_argument on a negative amount. *)

val get : set -> string -> int
(** Current value; [0] for a counter never touched. *)

val reset : set -> unit
(** Zero every counter (the names survive). *)

val to_list : set -> (string * int) list
(** All counters with non-zero values, sorted by name. *)

val dump : set -> (string * int) list
(** Alias for {!to_list}: sorted by name, stable across interning
    order — safe to diff in bit-for-bit replay checks. *)

val fold : set -> init:'a -> f:('a -> string -> int -> 'a) -> 'a

val matching : set -> prefix:string -> (string * int) list
(** Counters whose name starts with [prefix], sorted by name. *)

val sum_matching : set -> prefix:string -> int

val pp : Format.formatter -> set -> unit
