(** Microkernel-stack adapter for {!Migrate} (E20).

    The migrating guest is an ordinary thread whose pages are served by
    a user-level {!Vmk_ukernel.Pager} — the task faults them in through
    the pager protocol, which also mints its per-page capability
    handles. A daemon thread drives the {!Migrate} protocol over the
    new E20 syscalls ([Log_dirty]/[Dirty_read] on the task's address
    space, the cooperative handshake plus [Thread_pause] for
    stop-and-copy). Packets go to a sink thread by synchronous IPC, so
    there is never an in-flight packet across the pause point.

    On [Completed], a fresh destination kernel restores the task: it is
    spawned under a fresh pager, re-faults its pages (the Mapdb-state
    transfer — the mappings are re-established through the pager, and
    the per-page capability handles come back with the map items), then
    replays the deterministic workload from the migrated step counter.
    The handle counts on both sides are reported so the experiment can
    check the capability table survived the move. *)

type result = {
  r_outcome : Migrate.outcome;
  r_image : Migrate.Image.t;  (** Final image of the surviving copy. *)
  r_survivor : [ `Src | `Dst ];
  r_src_log : int list;  (** Seqs the source sink received, in order. *)
  r_dst_log : int list;
  r_total_sends : int;
  r_src_task_alive : bool;
  r_logdirty_faults : int;  (** ["uk.logdirty_fault"] on the source. *)
  r_handles_src : int;  (** Per-page capability handles at the source. *)
  r_handles_dst : int;  (** Handles re-established on the destination. *)
  r_window : int64 * int64;
      (** Source-clock [(start, end)] of the protocol run, as in
          {!Mig_vmm}. *)
}

val migrate :
  ?pages:int ->
  ?steps:int ->
  ?w:Migrate.Workload.t ->
  ?cfg:Migrate.config ->
  ?link:Migrate.link ->
  ?abort_at:Migrate.phase * Migrate.abort_reason ->
  ?plan:Vmk_faults.Faults.plan ->
  ?start_after:int64 ->
  ?seed:int64 ->
  unit ->
  result
(** Same knobs and defaults as {!Mig_vmm.migrate} (seed 53). *)
