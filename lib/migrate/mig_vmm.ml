module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter
module Hypervisor = Vmk_vmm.Hypervisor
module Hcall = Vmk_vmm.Hcall
module Net_channel = Vmk_vmm.Net_channel
module Netfront = Vmk_vmm.Netfront
module Bridge = Vmk_vmm.Bridge
module Sys = Vmk_guest.Sys
module Faults = Vmk_faults.Faults
module Overload = Vmk_overload.Overload
module Image = Migrate.Image
module Workload = Migrate.Workload

let guest_key = 1 (* fabric address of the migrating guest *)
let sink_key = 2
let storm_key = 3
let packet_len = 256

let total_sends ~steps ~(w : Workload.t) = steps / w.Workload.send_every

let reference ?(pages = 64) ?(steps = 400) ?(w = Workload.make ()) () =
  let img = Image.create ~pages in
  for _ = 1 to steps do
    let _, send = Workload.advance img w in
    (* Every send eventually succeeds in a live run, so the pure replay
       counts them all. *)
    if send then img.Image.sent <- img.Image.sent + 1
  done;
  img

(* Block until [cond], waking on any event or every [tick] cycles. *)
let wait ?(tick = 20_000L) cond =
  while not (cond ()) do
    ignore (Hcall.block ~timeout:tick ())
  done

type result = {
  r_outcome : Migrate.outcome;
  r_image : Image.t;
  r_survivor : [ `Src | `Dst ];
  r_src_log : int list;
  r_dst_log : int list;
  r_total_sends : int;
  r_src_guest_alive : bool;
  r_logdirty_faults : int;
  r_front_generation : int;
  r_window : int64 * int64;
}

(* The sink guest: a frontend that records every received sequence
   number. [stop] ends the loop once the fabric has gone quiet. *)
let sink_body chan ~backend ~log ~stop () =
  let front = Netfront.connect chan ~backend () in
  while not !stop do
    match Netfront.recv_blocking front ~timeout:100_000L () with
    | Some (_len, tag) -> log := Sys.vnet_seq tag :: !log
    | None -> ()
  done

(* A restored sink for the destination machine: same loop, but the
   frontend attaches through restore + reconnect since the destination
   bridge runs at generation 1 (a fresh [connect] only speaks the
   generation-0 handshake). *)
let sink_body_restored chan ~log ~stop () =
  let front = Netfront.restore chan ~generation:0 () in
  if Netfront.reconnect front ~timeout:20_000_000L () then
    while not !stop do
      match Netfront.recv_blocking front ~timeout:100_000L () with
      | Some (_len, tag) -> log := Sys.vnet_seq tag :: !log
      | None -> ()
    done

let guest_prims front ~src =
  {
    Migrate.g_touch = (fun ~vpn ~write -> Hcall.touch_page ~vpn ~write);
    g_burn = Hcall.burn;
    g_send =
      (fun ~seq ->
        Netfront.send front ~len:packet_len
          ~tag:(Sys.vnet_tag ~src ~dst:sink_key ~seq));
    g_wait = (fun () -> ignore (Hcall.block ~timeout:20_000L ()));
    g_drain =
      (fun () ->
        let budget = ref 200 in
        while
          Netfront.tx_unacked front > 0
          && (not (Netfront.backend_dead front))
          && !budget > 0
        do
          decr budget;
          Netfront.pump front;
          ignore (Hcall.block ~timeout:10_000L ())
        done);
  }

let migrate ?(pages = 64) ?(steps = 400) ?(w = Workload.make ())
    ?(cfg = Migrate.precopy ())
    ?(link = Migrate.link ~page_cost:2_000 ~state_cost:4_000 ())
    ?abort_at ?(plan = []) ?(start_after = 200_000L)
    ?(seed = 97L) () =
  let sends = total_sends ~steps ~w in
  (* --- source machine --- *)
  let mach = Machine.create ~seed () in
  let h = Hypervisor.create mach in
  let chan_g = Net_channel.create ~mode:Net_channel.Flip ~demux_key:guest_key () in
  let chan_s = Net_channel.create ~mode:Net_channel.Flip ~demux_key:sink_key () in
  let bridge =
    Hypervisor.create_domain h ~name:Bridge.name ~privileged:true ~weight:512
      (fun () ->
        Bridge.body mach ~connect_timeout:20_000_000L ~net:[ chan_g; chan_s ] ())
  in
  let src_log = ref [] and sink_stop = ref false in
  let _sink =
    Hypervisor.create_domain h ~name:"sink"
      (sink_body chan_s ~backend:bridge ~log:src_log ~stop:sink_stop)
  in
  let image = Image.create ~pages in
  let staging = Image.create ~pages in
  let q = Migrate.quiesce () in
  let g_done = ref false in
  let front_gen = ref 0 in
  let guest =
    Hypervisor.create_domain h ~name:"guest" (fun () ->
        let front = Netfront.connect chan_g ~backend:bridge () in
        Migrate.guest_run ~image ~w
          ~prims:(guest_prims front ~src:guest_key)
          ~q ~until_step:steps;
        front_gen := Netfront.generation front;
        g_done := true)
  in
  let session = Migrate.session ?abort_at ~link () in
  let staged_gen = ref 0 in
  let outcome = ref None in
  let paused = ref false in
  let ops =
    {
      Migrate.o_now = (fun () -> Machine.now mach);
      (* Transfer cost is wire time, not daemon CPU: sleep for the
         duration so the guest keeps running (and dirtying pages)
         while each pre-copy round streams out. *)
      o_burn =
        (fun n ->
          if n > 0 then ignore (Hcall.block ~timeout:(Int64.of_int n) ()));
      o_log_dirty =
        (fun enable ->
          if Hypervisor.is_alive h guest then
            Hcall.log_dirty ~dom:guest ~enable);
      o_dirty_read = (fun () -> Hcall.dirty_read guest);
      o_quiesce =
        (fun () ->
          q.Migrate.q_req <- true;
          wait (fun () -> q.Migrate.q_ack || !g_done);
          if not !g_done then begin
            Hcall.dom_pause guest;
            paused := true
          end);
      o_resume =
        (fun () ->
          q.Migrate.q_req <- false;
          if !paused then begin
            paused := false;
            Hcall.dom_unpause guest
          end);
      o_state_xfer = (fun () -> staged_gen := !front_gen);
      o_commit =
        (fun () ->
          if Hypervisor.is_alive h guest then Hypervisor.kill_domain h guest);
    }
  in
  let t_start = ref 0L and t_end = ref 0L in
  let _migd =
    Hypervisor.create_domain h ~name:"migd" ~privileged:true (fun () ->
        ignore (Hcall.block ~timeout:start_after ());
        (* Migrate a guest that is actually mid-run: frontend handshakes
           take a while, so gate on progress, not just time. *)
        wait (fun () -> !g_done || image.Image.step * 3 >= steps);
        t_start := Machine.now mach;
        outcome := Some (Migrate.run ~cfg ~session ~src:image ~staging ~ops);
        t_end := Machine.now mach)
  in
  let armed =
    if plan = [] then None
    else
      Some
        (Faults.arm plan mach
           ~migration:(Migrate.inject session)
           ~kill:(fun target ->
             if target = "guest" then Hypervisor.kill_domain h guest))
  in
  (* Run the source world until the protocol resolved and every packet
     the surviving source-side execution emitted reached the sink. *)
  let src_expected () =
    match !outcome with
    | None -> -1
    | Some (Migrate.Completed _) -> staging.Image.sent
    | Some (Migrate.Aborted _) -> if !g_done then sends else -1
  in
  ignore
    (Hypervisor.run h ~max_dispatches:3_000_000 ~until:(fun () ->
         let e = src_expected () in
         e >= 0 && List.length !src_log >= e));
  sink_stop := true;
  ignore (Hypervisor.run h ~max_dispatches:200_000);
  Option.iter (fun a -> Faults.disarm a mach) armed;
  let out =
    match !outcome with
    | Some o -> o
    | None ->
        (* The guest was killed by the fault plan before the daemon
           resolved; report as an abort at setup. *)
        Migrate.Aborted { a_phase = Migrate.Setup; a_reason = Migrate.Src_dead }
  in
  let finish ~survivor ~img ~dst_log ~gen =
    {
      r_outcome = out;
      r_image = img;
      r_survivor = survivor;
      r_src_log = List.rev !src_log;
      r_dst_log = dst_log;
      r_total_sends = sends;
      r_src_guest_alive = Hypervisor.is_alive h guest;
      r_logdirty_faults = Counter.get mach.Machine.counters "vmm.logdirty_fault";
      r_front_generation = gen;
      r_window = (!t_start, !t_end);
    }
  in
  match out with
  | Migrate.Aborted _ -> finish ~survivor:`Src ~img:image ~dst_log:[] ~gen:!front_gen
  | Migrate.Completed _ ->
      (* --- destination machine: restore and replay --- *)
      let mach2 = Machine.create ~seed:(Int64.add seed 1L) () in
      let h2 = Hypervisor.create mach2 in
      let chan_g2 =
        Net_channel.create ~mode:Net_channel.Flip ~demux_key:guest_key ()
      in
      let chan_s2 =
        Net_channel.create ~mode:Net_channel.Flip ~demux_key:sink_key ()
      in
      let _bridge2 =
        Hypervisor.create_domain h2 ~name:Bridge.name ~privileged:true
          ~weight:512
          (fun () ->
            Bridge.body mach2 ~connect_timeout:20_000_000L
              ~generation:(!staged_gen + 1)
              ~net:[ chan_g2; chan_s2 ] ())
      in
      let dst_log = ref [] and stop2 = ref false in
      let _sink2 =
        Hypervisor.create_domain h2 ~name:"sink"
          (sink_body_restored chan_s2 ~log:dst_log ~stop:stop2)
      in
      let image2 = Image.copy staging in
      let g2_done = ref false in
      let gen2 = ref !staged_gen in
      let _guest2 =
        Hypervisor.create_domain h2 ~name:"guest" (fun () ->
            let front = Netfront.restore chan_g2 ~generation:!staged_gen () in
            if Netfront.reconnect front ~timeout:20_000_000L () then begin
              Migrate.guest_run ~image:image2 ~w
                ~prims:(guest_prims front ~src:guest_key)
                ~q:(Migrate.quiesce ()) ~until_step:steps;
              gen2 := Netfront.generation front
            end;
            g2_done := true)
      in
      let dst_expected = sends - staging.Image.sent in
      ignore
        (Hypervisor.run h2 ~max_dispatches:3_000_000 ~until:(fun () ->
             !g2_done && List.length !dst_log >= dst_expected));
      stop2 := true;
      ignore (Hypervisor.run h2 ~max_dispatches:200_000);
      finish ~survivor:`Dst ~img:image2 ~dst_log:(List.rev !dst_log) ~gen:!gen2

(* --- driver-domain handoff under load --- *)

type handoff = {
  ho_mode : [ `Planned | `Crash ];
  ho_sent : int;
  ho_received : int;
  ho_retries : int;
  ho_outage : int64;
  ho_generation : int;
  ho_storm_received : int;
}

let driver_handoff ~mode ?(storm = true) ?(packets = 48) ?(seed = 101L) () =
  let mach = Machine.create ~seed () in
  let h = Hypervisor.create mach in
  let chan_c = Net_channel.create ~mode:Net_channel.Flip ~demux_key:guest_key () in
  let chan_s = Net_channel.create ~mode:Net_channel.Flip ~demux_key:sink_key () in
  let chan_st =
    Net_channel.create ~mode:Net_channel.Flip ~demux_key:storm_key ()
  in
  (* Only wire the storm channel when a storm guest will connect to it —
     the bridge waits [connect_timeout] for every listed channel. *)
  let chans = [ chan_c; chan_s ] @ if storm then [ chan_st ] else [] in
  let make_bridge ~generation () =
    (* The E17 fair gate, so the storm exhausts its own bucket at the
       switch instead of tail-dropping the client's packets out of the
       shared sink queue. Each bridge incarnation gets a fresh gate. *)
    let fair =
      Overload.Weighted_buckets.create ~counters:mach.Machine.counters
        ~period:200_000L ~burst:8 ()
    in
    Overload.Weighted_buckets.set_weight fair ~key:guest_key 32;
    Bridge.body mach ~connect_timeout:20_000_000L ~generation ~fair ~net:chans
      ()
  in
  let bridge0 =
    Hypervisor.create_domain h ~name:Bridge.name ~privileged:true ~weight:512
      (make_bridge ~generation:0)
  in
  let log = ref [] and storm_rx = ref 0 and stop = ref false in
  let _sink =
    Hypervisor.create_domain h ~name:"sink" (fun () ->
        let front = Netfront.connect chan_s ~backend:bridge0 () in
        let reconnecting = ref false in
        while not !stop do
          (match Netfront.recv_blocking front ~timeout:100_000L () with
          | Some (_len, tag) ->
              if Sys.vnet_src tag = storm_key then incr storm_rx
              else log := Sys.vnet_seq tag :: !log
          | None -> ());
          (* A receive-only frontend makes no hypercalls while idle, so
             backend death is invisible without the spurious-notify
             probe. *)
          if
            (Netfront.backend_dead front || Netfront.probe front)
            && not !reconnecting
          then begin
            reconnecting := true;
            ignore (Netfront.reconnect front ~timeout:20_000_000L ());
            reconnecting := false
          end
        done)
  in
  (if storm then
     let _storm =
       Hypervisor.create_domain h ~name:"storm" (fun () ->
           let front = Netfront.connect chan_st ~backend:bridge0 () in
           let sent = ref 0 in
           while not !stop do
             let tag =
               Sys.vnet_tag ~src:storm_key ~dst:sink_key ~seq:(!sent mod 9999)
             in
             if Netfront.send front ~len:packet_len ~tag then incr sent
             else begin
               Netfront.pump front;
               if Netfront.backend_dead front then
                 ignore (Netfront.reconnect front ~timeout:20_000_000L ());
               ignore (Hcall.block ~timeout:20_000L ())
             end
           done)
     in
     ());
  let retries = ref 0 in
  let first_fail = ref None and first_recover = ref None in
  let sent = ref 0 and client_done = ref false in
  let gen_end = ref 0 in
  let delivered () = List.sort_uniq compare !log in
  let _client =
    Hypervisor.create_domain h ~name:"client" (fun () ->
        let front = Netfront.connect chan_c ~backend:bridge0 () in
        let push seq =
          let tag = Sys.vnet_tag ~src:guest_key ~dst:sink_key ~seq in
          let sent_ok = ref false in
          while not !sent_ok do
            if Netfront.send front ~len:packet_len ~tag then begin
              if !first_fail <> None && !first_recover = None then
                first_recover := Some (Machine.now mach);
              sent_ok := true;
              incr sent
            end
            else begin
              incr retries;
              if !first_fail = None then first_fail := Some (Machine.now mach);
              Netfront.pump front;
              if Netfront.backend_dead front || Netfront.probe front then
                ignore (Netfront.reconnect front ~timeout:20_000_000L ());
              ignore (Hcall.block ~timeout:30_000L ())
            end
          done
        in
        let drain () =
          let budget = ref 400 in
          while Netfront.tx_unacked front > 0 && !budget > 0 do
            decr budget;
            Netfront.pump front;
            ignore (Hcall.block ~timeout:10_000L ())
          done
        in
        for seq = 0 to packets - 1 do
          push seq;
          Hcall.burn 20_000
        done;
        drain ();
        (* A frontend accept is not delivery: packets sitting in the old
           bridge's rings or switch queues die with it. Retransmit
           whatever the sink has not logged (the sink's log is the
           harness's stand-in for an application-level ack channel);
           the receiver dedupes by sequence number. *)
        let budget = ref 20 in
        let missing () =
          let got = delivered () in
          List.filter
            (fun s -> not (List.mem s got))
            (List.init packets Fun.id)
        in
        while missing () <> [] && !budget > 0 do
          decr budget;
          (* Let in-flight packets land before declaring them lost. *)
          ignore (Hcall.block ~timeout:100_000L ());
          List.iter push (missing ());
          drain ()
        done;
        gen_end := Netfront.generation front;
        client_done := true)
  in
  let _toolstack =
    Hypervisor.create_domain h ~name:"toolstack" ~privileged:true (fun () ->
        (* Hand off mid-stream: wait until the client has demonstrably
           pushed packets through the incumbent bridge. *)
        while !sent < packets / 3 do
          ignore (Hcall.block ~timeout:50_000L ())
        done;
        (* The outage clock starts at the handoff, not at boot-time
           ring-full transients. *)
        first_fail := None;
        first_recover := None;
        (match mode with
        | `Planned ->
            (* Build the successor, then destroy the old incarnation:
               frontends fail over into a backend already waiting. *)
            let nd =
              Hcall.dom_create ~name:Bridge.name ~privileged:true ~weight:512
                (make_bridge ~generation:1)
            in
            ignore nd;
            Hypervisor.kill_domain h bridge0
        | `Crash ->
            (* Destroy first; the supervisor only notices a poll later. *)
            Hypervisor.kill_domain h bridge0;
            ignore (Hcall.block ~timeout:500_000L ());
            ignore
              (Hcall.dom_create ~name:Bridge.name ~privileged:true ~weight:512
                 (make_bridge ~generation:1)));
        ())
  in
  ignore
    (Hypervisor.run h ~max_dispatches:3_000_000 ~until:(fun () ->
         !client_done && List.length (delivered ()) >= packets));
  stop := true;
  ignore (Hypervisor.run h ~max_dispatches:300_000);
  let outage =
    match (!first_fail, !first_recover) with
    | Some f, Some r -> Int64.sub r f
    | Some f, None -> Int64.sub (Machine.now mach) f
    | None, _ -> 0L
  in
  {
    ho_mode = mode;
    ho_sent = !sent;
    ho_received = List.length (delivered ());
    ho_retries = !retries;
    ho_outage = outage;
    ho_generation = !gen_end;
    ho_storm_received = !storm_rx;
  }
