module Machine = Vmk_hw.Machine
module Addr = Vmk_hw.Addr
module Counter = Vmk_trace.Counter
module Kernel = Vmk_ukernel.Kernel
module Sysif = Vmk_ukernel.Sysif
module Pager = Vmk_ukernel.Pager
module Proto = Vmk_ukernel.Proto
module Faults = Vmk_faults.Faults
module Image = Migrate.Image
module Workload = Migrate.Workload

let base_vpn = 0x5000
(* Where the task's image lives in its address space; the pager maps
   frames here on first touch. *)

type result = {
  r_outcome : Migrate.outcome;
  r_image : Image.t;
  r_survivor : [ `Src | `Dst ];
  r_src_log : int list;
  r_dst_log : int list;
  r_total_sends : int;
  r_src_task_alive : bool;
  r_logdirty_faults : int;
  r_handles_src : int;
  r_handles_dst : int;
  r_window : int64 * int64;
}

(* The sink: record every caller's label, reply ok. Blocking in Recv
   forever is fine — an idle sink does not keep the kernel running. *)
let sink_body ~log () =
  let rec loop (incoming : Sysif.tid * Sysif.msg) =
    let caller, m = incoming in
    log := m.Sysif.label :: !log;
    match Sysif.reply_wait caller (Sysif.msg Proto.ok) with
    | next -> loop next
    | exception Sysif.Ipc_error _ -> loop (Sysif.recv Sysif.Any)
  in
  match Sysif.recv Sysif.Any with
  | incoming -> loop incoming
  | exception Sysif.Ipc_error _ -> ()

(* Fault the whole image window in through the pager (one touch per
   page boundary) and count the capability handles that arrived with
   the map items. *)
let fault_in ~pages =
  Sysif.touch ~addr:(Addr.of_vpn base_vpn) ~len:(pages * Addr.page_size)
    ~write:true;
  List.length
    (List.filter_map
       (fun i -> Sysif.cap_lookup ~vpn:(base_vpn + i))
       (List.init pages Fun.id))

let task_prims ~sink =
  {
    Migrate.g_touch =
      (fun ~vpn ~write ->
        Sysif.touch ~addr:(Addr.of_vpn (base_vpn + vpn)) ~len:1 ~write);
    g_burn = Sysif.burn;
    g_send =
      (fun ~seq ->
        match Sysif.call ~timeout:2_000_000L sink (Sysif.msg seq) with
        | _ -> true
        | exception Sysif.Ipc_error _ -> false);
    g_wait = (fun () -> Sysif.sleep 20_000L);
    g_drain = (fun () -> ());
  }

let migrate ?(pages = 64) ?(steps = 400) ?(w = Workload.make ())
    ?(cfg = Migrate.precopy ())
    ?(link = Migrate.link ~page_cost:2_000 ~state_cost:4_000 ())
    ?abort_at ?(plan = []) ?(start_after = 200_000L)
    ?(seed = 53L) () =
  let sends = steps / w.Workload.send_every in
  (* --- source kernel --- *)
  let mach = Machine.create ~seed () in
  let k = Kernel.create mach in
  let pager =
    Kernel.spawn k ~name:"pager" ~priority:2 (Pager.body ~pool_pages:(pages + 4))
  in
  let src_log = ref [] in
  let sink = Kernel.spawn k ~name:"sink" ~priority:3 (sink_body ~log:src_log) in
  let image = Image.create ~pages in
  let staging = Image.create ~pages in
  let q = Migrate.quiesce () in
  let g_done = ref false in
  let handles_src = ref 0 in
  let task =
    Kernel.spawn k ~name:"task" ~pager (fun () ->
        handles_src := fault_in ~pages;
        Migrate.guest_run ~image ~w ~prims:(task_prims ~sink) ~q
          ~until_step:steps;
        g_done := true)
  in
  let session = Migrate.session ?abort_at ~link () in
  let outcome = ref None in
  let paused = ref false in
  let staged_handles = ref 0 in
  let in_window v = v >= base_vpn && v < base_vpn + pages in
  let ops =
    {
      Migrate.o_now = (fun () -> Machine.now mach);
      (* Wire time, not daemon CPU — see {!Mig_vmm}. *)
      o_burn = (fun n -> if n > 0 then Sysif.sleep (Int64.of_int n));
      o_log_dirty =
        (fun enable ->
          if Kernel.is_alive k task then Sysif.log_dirty ~target:task ~enable);
      o_dirty_read =
        (fun () ->
          List.filter_map
            (fun v -> if in_window v then Some (v - base_vpn) else None)
            (Sysif.dirty_read task));
      o_quiesce =
        (fun () ->
          q.Migrate.q_req <- true;
          while not (q.Migrate.q_ack || !g_done) do
            Sysif.sleep 20_000L
          done;
          if not !g_done then begin
            Sysif.thread_pause task;
            paused := true
          end);
      o_resume =
        (fun () ->
          q.Migrate.q_req <- false;
          if !paused then begin
            paused := false;
            Sysif.thread_resume task
          end);
      o_state_xfer = (fun () -> staged_handles := !handles_src);
      o_commit = (fun () -> if Kernel.is_alive k task then Kernel.kill k task);
    }
  in
  let t_start = ref 0L and t_end = ref 0L in
  let _migd =
    Kernel.spawn k ~name:"migd" ~priority:1 (fun () ->
        Sysif.sleep start_after;
        (* Gate on progress so the migration catches the task mid-run. *)
        while not (!g_done || image.Image.step * 3 >= steps) do
          Sysif.sleep 20_000L
        done;
        t_start := Machine.now mach;
        outcome := Some (Migrate.run ~cfg ~session ~src:image ~staging ~ops);
        t_end := Machine.now mach)
  in
  let armed =
    if plan = [] then None
    else
      Some
        (Faults.arm plan mach
           ~migration:(Migrate.inject session)
           ~kill:(fun target -> if target = "task" then Kernel.kill k task))
  in
  let src_expected () =
    match !outcome with
    | None -> -1
    | Some (Migrate.Completed _) -> staging.Image.sent
    | Some (Migrate.Aborted _) -> if !g_done then sends else -1
  in
  ignore
    (Kernel.run k ~max_dispatches:3_000_000 ~until:(fun () ->
         let e = src_expected () in
         e >= 0 && List.length !src_log >= e));
  ignore (Kernel.run k ~max_dispatches:300_000);
  Option.iter (fun a -> Faults.disarm a mach) armed;
  let out =
    match !outcome with
    | Some o -> o
    | None ->
        Migrate.Aborted { a_phase = Migrate.Setup; a_reason = Migrate.Src_dead }
  in
  let finish ~survivor ~img ~dst_log ~handles_src ~handles_dst =
    {
      r_outcome = out;
      r_image = img;
      r_survivor = survivor;
      r_src_log = List.rev !src_log;
      r_dst_log = dst_log;
      r_total_sends = sends;
      r_src_task_alive = Kernel.is_alive k task;
      r_logdirty_faults = Counter.get mach.Machine.counters "uk.logdirty_fault";
      r_handles_src = handles_src;
      r_handles_dst = handles_dst;
      r_window = (!t_start, !t_end);
    }
  in
  match out with
  | Migrate.Aborted _ ->
      finish ~survivor:`Src ~img:image ~dst_log:[] ~handles_src:!handles_src
        ~handles_dst:0
  | Migrate.Completed _ ->
      (* --- destination kernel: restore through the pager, replay --- *)
      let mach2 = Machine.create ~seed:(Int64.add seed 1L) () in
      let k2 = Kernel.create mach2 in
      let pager2 =
        Kernel.spawn k2 ~name:"pager" ~priority:2
          (Pager.body ~pool_pages:(pages + 4))
      in
      let dst_log = ref [] in
      let sink2 =
        Kernel.spawn k2 ~name:"sink" ~priority:3 (sink_body ~log:dst_log)
      in
      let image2 = Image.copy staging in
      let handles_dst = ref 0 in
      let g2_done = ref false in
      let _task2 =
        Kernel.spawn k2 ~name:"task" ~pager:pager2 (fun () ->
            (* Re-establish the Mapdb state through the destination
               pager; the map replies re-mint the per-page capability
               handles the source counted into [staged_handles]. *)
            handles_dst := fault_in ~pages;
            Migrate.guest_run ~image:image2 ~w ~prims:(task_prims ~sink:sink2)
              ~q:(Migrate.quiesce ()) ~until_step:steps;
            g2_done := true)
      in
      let dst_expected = sends - staging.Image.sent in
      ignore
        (Kernel.run k2 ~max_dispatches:3_000_000 ~until:(fun () ->
             !g2_done && List.length !dst_log >= dst_expected));
      ignore (Kernel.run k2 ~max_dispatches:300_000);
      (* [staged_handles] is the count that rode the state message —
         the source-side truth the restored table is held against. *)
      finish ~survivor:`Dst ~img:image2 ~dst_log:(List.rev !dst_log)
        ~handles_src:!staged_handles ~handles_dst:!handles_dst
