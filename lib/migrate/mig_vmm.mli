(** VMM-stack adapter for {!Migrate} (E20).

    The source machine runs a {!Vmk_vmm.Bridge} driver domain (the
    inter-guest fabric), a sink guest, the migrating guest and a
    privileged migration-daemon domain. The daemon drives the {!Migrate}
    protocol over the new E20 hypercalls: [log_dirty]/[dirty_read] for
    the iterative rounds, the cooperative quiesce handshake plus
    [dom_pause] for stop-and-copy, and domain destruction at commit.
    Device state — the frontend's reconnect generation and its XenStore
    demux key — rides the final state message.

    On [Completed], a fresh destination machine restores the guest:
    {!Vmk_vmm.Netfront.restore} rebuilds the frontend from the migrated
    generation, the destination bridge runs at generation [+1], and the
    ordinary E13 reconnect handshake reattaches it; the guest then
    replays its deterministic workload from the migrated step counter.
    On [Aborted], the source resumes and finishes; no destination is
    built. Packets are seq-tagged, so the union of the two sinks' logs
    must be every sequence number exactly once — the conservation
    property the qcheck satellite drives. *)

type result = {
  r_outcome : Migrate.outcome;
  r_image : Migrate.Image.t;  (** Final image of the surviving copy. *)
  r_survivor : [ `Src | `Dst ];
  r_src_log : int list;  (** Seqs the source-machine sink received, in order. *)
  r_dst_log : int list;  (** Same for the destination machine ([] if aborted). *)
  r_total_sends : int;  (** Packets the whole workload emits. *)
  r_src_guest_alive : bool;  (** Source guest domain alive after the run. *)
  r_logdirty_faults : int;  (** ["vmm.logdirty_fault"] on the source. *)
  r_front_generation : int;  (** Surviving frontend's reconnect generation. *)
  r_window : int64 * int64;
      (** Source-clock [(start, end)] of the protocol run — lets a
          caller aim a time-scheduled {!Vmk_faults.Faults.Mig_fault}
          into the middle of the migration window deterministically. *)
}

val migrate :
  ?pages:int ->
  ?steps:int ->
  ?w:Migrate.Workload.t ->
  ?cfg:Migrate.config ->
  ?link:Migrate.link ->
  ?abort_at:Migrate.phase * Migrate.abort_reason ->
  ?plan:Vmk_faults.Faults.plan ->
  ?start_after:int64 ->
  ?seed:int64 ->
  unit ->
  result
(** One migration attempt. Defaults: 64 pages, 400 steps, the default
    workload, {!Migrate.precopy}, no injection, daemon start after 200K
    cycles, seed 97. [plan] is armed on the source machine with
    {!Migrate.inject} as the [migration] callback (plus a kill hook for
    ["guest"]), so time-based [Mig_fault] events drive the same abort
    machinery as [abort_at]. *)

val reference : ?pages:int -> ?steps:int -> ?w:Migrate.Workload.t -> unit ->
  Migrate.Image.t
(** The uninterrupted execution's final image — a pure replay of the
    workload, which is exactly what an unmigrated guest computes. *)

val total_sends : steps:int -> w:Migrate.Workload.t -> int

type handoff = {
  ho_mode : [ `Planned | `Crash ];
  ho_sent : int;  (** Packets the streaming client got accepted. *)
  ho_received : int;  (** Packets the sink saw. *)
  ho_retries : int;  (** Send attempts that failed during the outage. *)
  ho_outage : int64;  (** First failed send → first success after it. *)
  ho_generation : int;  (** Client frontend's generation at the end. *)
  ho_storm_received : int;  (** Storm packets delivered meanwhile. *)
}

val driver_handoff :
  mode:[ `Planned | `Crash ] ->
  ?storm:bool ->
  ?packets:int ->
  ?seed:int64 ->
  unit ->
  handoff
(** Migrate the bridge driver domain in place while a client streams
    packets through it (optionally under a packet storm from a third
    guest — the E14 overload condition). [`Planned]: the toolstack
    builds the generation [n+1] incarnation {e first}, then destroys
    the old one, so frontends reconnect into a waiting backend.
    [`Crash]: the old incarnation is destroyed first and the
    replacement is only built after a supervision-poll delay — the E13
    crash-restart baseline. The client retries with
    {!Vmk_vmm.Netfront.reconnect}; the outage span is what the planned
    handoff is supposed to shrink. *)
