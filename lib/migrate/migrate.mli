(** Stack-agnostic live-migration core (E20).

    Checkpoint/restore and pre-copy migration move a guest between two
    simulated machines. Because guests are OCaml fibers, their running
    continuation cannot be serialised; what migrates is the explicit
    {!Image} — the guest's architectural state: page stamps, the
    deterministic workload's step counter and the packet sequence
    counter. The guest body is a pure function of the image, so a
    restored image replayed on the destination is bit-for-bit the
    execution the source would have continued — exactly the property
    the experiment's replay verdict checks.

    The protocol is classic pre-copy [Clark et al., NSDI'05] shrunk to
    the model: arm log-dirty tracking, push all pages while the guest
    runs, then iterate rounds pushing only the pages dirtied since the
    last harvest. When a round's dirty set falls to the convergence
    threshold (or the round budget runs out), quiesce the guest
    cooperatively, pause it, push the remainder plus device state, and
    commit. [max_rounds = 0] degenerates into plain stop-and-copy —
    which is also the checkpoint/restore path.

    Robustness contract: a failure injected at any phase — the source's
    migration daemon dying, the destination rejecting, the transfer
    link dropping — resolves to {e exactly one} live consistent copy.
    Failures strictly before the commit point abort-and-rollback: the
    source is resumed (or never paused) and the destination discards
    its staging image. The commit point itself is atomic in the model:
    once the destination acknowledges, the source is destroyed in the
    same indivisible step, so "both alive" and "neither alive" are
    unrepresentable. Injection is either phase-targeted
    ({!session}[~abort_at], the qcheck property's lever) or time-based
    through {!inject}, the {!Vmk_faults.Faults.Mig_fault} callback. *)

(** {1 The migrated state} *)

module Image : sig
  type t = {
    pages : int array;  (** One content stamp per guest page. *)
    mutable step : int;  (** Workload steps executed so far. *)
    mutable sent : int;  (** Packets handed to the fabric so far. *)
  }

  val create : pages:int -> t
  (** All stamps zero, counters zero. *)

  val copy : t -> t
  val equal : t -> t -> bool
  (** Bit-for-bit: every stamp and both counters. *)

  val page_count : t -> int

  val digest : t -> int
  (** Order-sensitive fold of the stamps and counters — a compact
      fingerprint for tables. Equal images have equal digests. *)
end

(** {1 The deterministic guest workload} *)

module Workload : sig
  type t = {
    hot : int;  (** Pages 0..hot-1 are rewritten every step. *)
    cold_every : int;  (** One cold page is rewritten every [cold_every] steps. *)
    send_every : int;  (** A packet is sent every [send_every] steps. *)
    step_cost : int;  (** Guest cycles burned per step. *)
  }

  val make :
    ?hot:int -> ?cold_every:int -> ?send_every:int -> ?step_cost:int ->
    unit -> t
  (** Defaults: [hot = 4], [cold_every = 16], [send_every = 8],
      [step_cost = 2_000]. The steady-state dirty rate is roughly
      [hot + round_span / cold_every] pages per harvest — [hot] is the
      knob the E20 sweep turns.
      @raise Invalid_argument on non-positive fields. *)

  val advance : Image.t -> t -> int list * bool
  (** Execute one step {e on the image}: mix the stamps of the pages
      this step writes, bump [step], and report [(written pages,
      send a packet now?)]. Pure in the image — replaying the same
      steps from the same image always produces the same states. *)
end

(** {1 Running a guest around an image} *)

type quiesce = { mutable q_req : bool; mutable q_ack : bool }
(** The cooperative pause handshake between the migration daemon and
    the guest: the daemon raises [q_req]; the guest, at its next step
    boundary, drains in-flight packets, raises [q_ack] and spins in
    [g_wait] — only then does the daemon issue the stack's pause
    primitive, so the image is always quiesced at a step boundary. *)

val quiesce : unit -> quiesce

type guest_prims = {
  g_touch : vpn:int -> write:bool -> unit;
      (** Make the access visible to the stack's dirty tracker. [vpn]
          is the image page index; adapters add their base. *)
  g_burn : int -> unit;
  g_send : seq:int -> bool;  (** [false] = backpressure; will be retried. *)
  g_wait : unit -> unit;  (** Small block/yield (retry and pause spin). *)
  g_drain : unit -> unit;  (** Flush in-flight packets (pre-pause). *)
}

val guest_run :
  image:Image.t -> w:Workload.t -> prims:guest_prims -> q:quiesce ->
  until_step:int -> unit
(** Drive the image to [until_step], honouring the quiesce handshake at
    every step boundary and retrying backpressured sends. [sent] is
    incremented only after the fabric accepted the packet, so a
    migrated [sent] counter never double-counts an in-flight packet. *)

(** {1 The transfer link} *)

type link = {
  mutable l_down : bool;
  l_page_cost : int;  (** Daemon cycles per page pushed. *)
  l_state_cost : int;  (** Daemon cycles per control/state message. *)
}

val link : ?page_cost:int -> ?state_cost:int -> unit -> link
(** Defaults: 400 cycles/page, 2_000 cycles/state message. *)

exception Link_down
(** Raised by the transfer helpers when the link is down; the protocol
    driver converts it into an abort at the current phase. *)

(** {1 Protocol} *)

type phase = Setup | Precopy of int  (** Round; 0 = the full first pass. *)
           | Stopcopy | Commit

type abort_reason = Src_dead | Dst_reject | Link_drop

type outcome =
  | Completed of {
      c_rounds : int;  (** Copy rounds run (1 = just the full pass). *)
      c_pages : int;  (** Pages pushed over the link, all rounds. *)
      c_downtime : int64;  (** Source-side pause → commit span, cycles. *)
    }
  | Aborted of { a_phase : phase; a_reason : abort_reason }

type session
(** One migration attempt: the link, plus the injected-failure state
    the protocol driver polls at every phase boundary. *)

val session : ?abort_at:phase * abort_reason -> ?link:link -> unit -> session
val session_link : session -> link

val inject : session -> Vmk_faults.Faults.mig_action -> unit
(** Deliver a time-based mid-migration fault (wire this as the
    [migration] callback of {!Vmk_faults.Faults.arm}). [Mig_link_drop]
    additionally downs the link immediately, so a transfer already in
    progress fails too. *)

type ops = {
  o_now : unit -> int64;
  o_burn : int -> unit;  (** Daemon-side cycles (the link charges). *)
  o_log_dirty : bool -> unit;
  o_dirty_read : unit -> int list;  (** Image page indices, ascending. *)
  o_quiesce : unit -> unit;  (** Handshake + stack pause primitive. *)
  o_resume : unit -> unit;  (** Rollback: unpause; no-op if never paused. *)
  o_state_xfer : unit -> unit;
      (** Move device/connection state (grant, event-channel, XenStore
          generation on the VMM; mapping and capability-handle counts
          on the microkernel) into the staging area. *)
  o_commit : unit -> unit;  (** Atomically destroy the source guest. *)
}

val send_pages : session -> ops -> src:Image.t -> staging:Image.t ->
  int list -> unit
(** Push the listed pages over the link into the staging image.
    @raise Link_down if the link is down. *)

type config = {
  max_rounds : int;  (** 0 = pure stop-and-copy (checkpoint). *)
  threshold : int;  (** Dirty pages at/below which precopy converges. *)
}

val precopy : ?max_rounds:int -> ?threshold:int -> unit -> config
(** Defaults: 8 rounds, threshold 8. *)

val stop_and_copy : config
(** [max_rounds = 0]: the checkpoint/restore configuration. *)

val run :
  cfg:config -> session:session -> src:Image.t -> staging:Image.t ->
  ops:ops -> outcome
(** Drive one migration attempt. On [Completed] the staging image holds
    the quiesced source state and the source guest is destroyed; on
    [Aborted] the source is resumed (consistent, at a step boundary)
    and the staging image must be discarded by the caller. Injected
    faults are polled at every phase boundary; {!Link_down} aborts from
    inside a transfer. Never raises. *)

val pp_phase : Format.formatter -> phase -> unit
val pp_reason : Format.formatter -> abort_reason -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val phase_name : phase -> string
val reason_name : abort_reason -> string
