module Faults = Vmk_faults.Faults

(* --- the migrated state --- *)

module Image = struct
  type t = { pages : int array; mutable step : int; mutable sent : int }

  let create ~pages =
    if pages < 1 then invalid_arg "Image.create: pages < 1";
    { pages = Array.make pages 0; step = 0; sent = 0 }

  let copy t = { pages = Array.copy t.pages; step = t.step; sent = t.sent }
  let equal a b = a.step = b.step && a.sent = b.sent && a.pages = b.pages
  let page_count t = Array.length t.pages

  let digest t =
    let h = ref 0x811c9dc5 in
    let mix v = h := (!h lxor v) * 0x01000193 land max_int in
    Array.iter mix t.pages;
    mix t.step;
    mix t.sent;
    !h
end

(* --- the deterministic guest workload --- *)

module Workload = struct
  type t = { hot : int; cold_every : int; send_every : int; step_cost : int }

  let make ?(hot = 4) ?(cold_every = 16) ?(send_every = 8)
      ?(step_cost = 2_000) () =
    if hot < 1 || cold_every < 1 || send_every < 1 || step_cost < 1 then
      invalid_arg "Workload.make: non-positive field";
    { hot; cold_every; send_every; step_cost }

  (* Stamp update: any deterministic mixing works; this keeps stamps
     positive and sensitive to both the old stamp and the step. *)
  let stamp old step = ((old * 16777619) lxor (step * 2654435761)) land max_int

  let advance (img : Image.t) w =
    let n = Array.length img.Image.pages in
    let s = img.Image.step in
    let hot = min w.hot n in
    let written = ref [] in
    let write i =
      img.Image.pages.(i) <- stamp img.Image.pages.(i) s;
      written := i :: !written
    in
    for i = hot - 1 downto 0 do
      write i
    done;
    (* One cold page per cold_every steps, cycling through the non-hot
       tail so the working set slowly sweeps the whole image. *)
    (if s mod w.cold_every = 0 && n > hot then
       write (hot + (s / w.cold_every mod (n - hot))));
    img.Image.step <- s + 1;
    (!written, (s + 1) mod w.send_every = 0)
end

(* --- running a guest around an image --- *)

type quiesce = { mutable q_req : bool; mutable q_ack : bool }

let quiesce () = { q_req = false; q_ack = false }

type guest_prims = {
  g_touch : vpn:int -> write:bool -> unit;
  g_burn : int -> unit;
  g_send : seq:int -> bool;
  g_wait : unit -> unit;
  g_drain : unit -> unit;
}

let guest_run ~image ~w ~prims ~q ~until_step =
  while image.Image.step < until_step do
    if q.q_req then begin
      (* Quiesce at the step boundary: flush in-flight packets so the
         [sent] counter in the image matches what the fabric will
         eventually deliver, then signal and spin until the daemon
         either pauses us here or rolls the migration back. *)
      prims.g_drain ();
      q.q_ack <- true;
      while q.q_req do
        prims.g_wait ()
      done;
      q.q_ack <- false
    end
    else begin
      let written, send = Workload.advance image w in
      List.iter (fun vpn -> prims.g_touch ~vpn ~write:true) written;
      prims.g_burn w.Workload.step_cost;
      if send then begin
        let seq = image.Image.sent in
        while not (prims.g_send ~seq) do
          prims.g_wait ()
        done;
        image.Image.sent <- image.Image.sent + 1
      end
    end
  done;
  prims.g_drain ()

(* --- the transfer link --- *)

type link = { mutable l_down : bool; l_page_cost : int; l_state_cost : int }

let link ?(page_cost = 400) ?(state_cost = 2_000) () =
  { l_down = false; l_page_cost = page_cost; l_state_cost = state_cost }

exception Link_down

(* --- protocol --- *)

type phase = Setup | Precopy of int | Stopcopy | Commit
type abort_reason = Src_dead | Dst_reject | Link_drop

type outcome =
  | Completed of { c_rounds : int; c_pages : int; c_downtime : int64 }
  | Aborted of { a_phase : phase; a_reason : abort_reason }

type session = {
  s_link : link;
  s_abort_at : (phase * abort_reason) option;
  mutable s_fault : abort_reason option;
}

let session ?abort_at ?(link = link ()) () =
  { s_link = link; s_abort_at = abort_at; s_fault = None }

let session_link s = s.s_link

let inject s (a : Faults.mig_action) =
  match a with
  | Faults.Mig_src_dead -> s.s_fault <- Some Src_dead
  | Faults.Mig_dst_reject -> s.s_fault <- Some Dst_reject
  | Faults.Mig_link_drop ->
      s.s_link.l_down <- true;
      s.s_fault <- Some Link_drop

type ops = {
  o_now : unit -> int64;
  o_burn : int -> unit;
  o_log_dirty : bool -> unit;
  o_dirty_read : unit -> int list;
  o_quiesce : unit -> unit;
  o_resume : unit -> unit;
  o_state_xfer : unit -> unit;
  o_commit : unit -> unit;
}

let send_pages s ops ~(src : Image.t) ~(staging : Image.t) vpns =
  if s.s_link.l_down then raise Link_down;
  List.iter (fun v -> staging.Image.pages.(v) <- src.Image.pages.(v)) vpns;
  ops.o_burn (s.s_link.l_page_cost * List.length vpns)

let send_state s ops ~(src : Image.t) ~(staging : Image.t) =
  if s.s_link.l_down then raise Link_down;
  staging.Image.step <- src.Image.step;
  staging.Image.sent <- src.Image.sent;
  ops.o_burn s.s_link.l_state_cost;
  ops.o_state_xfer ()

type config = { max_rounds : int; threshold : int }

let precopy ?(max_rounds = 8) ?(threshold = 8) () =
  if max_rounds < 0 || threshold < 0 then invalid_arg "Migrate.precopy";
  { max_rounds; threshold }

let stop_and_copy = { max_rounds = 0; threshold = 0 }

exception Abort of phase * abort_reason

(* Phase boundary: deliver a pending injected fault, or the
   deterministic [abort_at] of the qcheck property. *)
let check s phase =
  (match s.s_fault with
  | Some r ->
      s.s_fault <- None;
      raise (Abort (phase, r))
  | None -> ());
  match s.s_abort_at with
  | Some (p, r) when p = phase -> raise (Abort (phase, r))
  | _ -> ()

let run ~cfg ~session:s ~src ~staging ~ops =
  let total = Image.page_count src in
  let rounds = ref 0 in
  let pages = ref 0 in
  let guard phase f =
    check s phase;
    try f () with Link_down -> raise (Abort (phase, Link_drop))
  in
  let tracking = cfg.max_rounds > 0 in
  let residual = ref [] in
  let paused = ref false in
  try
    guard Setup (fun () -> if tracking then ops.o_log_dirty true);
    if tracking then begin
      (* Round 0: push everything while the guest keeps running. *)
      guard (Precopy 0) (fun () ->
          send_pages s ops ~src ~staging (List.init total Fun.id);
          pages := !pages + total;
          rounds := 1);
      let r = ref 1 in
      let converged = ref false in
      while (not !converged) && !r <= cfg.max_rounds do
        guard (Precopy !r) (fun () ->
            let dirty = ops.o_dirty_read () in
            if List.length dirty <= cfg.threshold then begin
              (* Reading the dirty set clears it, so the convergence
                 harvest must ride along to stop-and-copy or its pages
                 are lost. *)
              residual := dirty;
              converged := true
            end
            else begin
              send_pages s ops ~src ~staging dirty;
              pages := !pages + List.length dirty;
              rounds := !rounds + 1;
              incr r
            end)
      done
      (* Round budget exhausted without convergence: fall back to
         stop-and-copy of whatever is still dirty. *)
    end;
    ops.o_quiesce ();
    paused := true;
    let pause_t = ops.o_now () in
    guard Stopcopy (fun () ->
        let rest =
          if tracking then
            List.sort_uniq compare (!residual @ ops.o_dirty_read ())
          else List.init total Fun.id
        in
        send_pages s ops ~src ~staging rest;
        pages := !pages + List.length rest;
        rounds := !rounds + 1;
        send_state s ops ~src ~staging);
    (* The destination acknowledges here; surviving the Commit check is
       the ack. From this point the switch-over is atomic: there is no
       injection point between the ack and the source's destruction, so
       "both copies live" is unrepresentable. *)
    guard Commit (fun () -> ());
    ops.o_commit ();
    if tracking then (try ops.o_log_dirty false with _ -> ());
    Completed
      {
        c_rounds = !rounds;
        c_pages = !pages;
        c_downtime = Int64.sub (ops.o_now ()) pause_t;
      }
  with Abort (p, r) ->
    (* Roll back to a consistent source: resume it (it quiesced at a
       step boundary, so its image is coherent) and let the caller
       discard the staging image. [Src_dead] lands here too — the
       daemon's death is cleaned up by the surviving toolstack, which
       performs exactly this rollback. *)
    if !paused then ops.o_resume ();
    if tracking then (try ops.o_log_dirty false with _ -> ());
    Aborted { a_phase = p; a_reason = r }

let phase_name = function
  | Setup -> "setup"
  | Precopy r -> Printf.sprintf "precopy-%d" r
  | Stopcopy -> "stopcopy"
  | Commit -> "commit"

let reason_name = function
  | Src_dead -> "src-dead"
  | Dst_reject -> "dst-reject"
  | Link_drop -> "link-drop"

let pp_phase ppf p = Format.pp_print_string ppf (phase_name p)
let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)

let pp_outcome ppf = function
  | Completed { c_rounds; c_pages; c_downtime } ->
      Format.fprintf ppf "completed (%d rounds, %d pages, downtime %Ld)"
        c_rounds c_pages c_downtime
  | Aborted { a_phase; a_reason } ->
      Format.fprintf ppf "aborted at %s (%s)" (phase_name a_phase)
        (reason_name a_reason)
