(** Overload-robustness policies shared by both I/O stacks (E15).

    Three deterministic building blocks: token-bucket admission control
    (shed work {e before} paying for it — the receive-livelock defense),
    bounded queues with an explicit full-queue policy (reject,
    drop-oldest, or tell the producer to retry until a deadline), and a
    client-side retry schedule with exponential backoff whose jitter is
    drawn from a seeded {!Vmk_sim.Rng} stream — so overloaded runs stay
    bit-for-bit reproducible (the property [test/test_overload.ml]
    asserts).

    Components that apply a policy itemize the outcome machine-wide
    under the ["overload.*"] counter namespace:
    {ul
    {- [overload.drop] — work accepted into the system then discarded
       (full ring, bounded queue overflow);}
    {- [overload.shed] — work refused {e early} by admission control,
       before the expensive part of the path ran;}
    {- [overload.retry] — client retry attempts under backoff;}
    {- [overload.backoff_cycles] — virtual cycles spent waiting between
       retries;}
    {- [overload.queue_peak.<name>] — high-water mark of each policied
       queue;}
    {- [overload.nic_drop] — packets the NIC dropped for want of a posted
       rx buffer (wired up by {!Vmk_hw.Machine.create}).}}

    Interrupt mitigation (E16) itemizes under the ["mitig.*"] namespace:
    [mitig.irq_coalesced] (completions absorbed by a NIC hold-off
    window), [mitig.poll_rounds] (non-empty NAPI poll rounds),
    [mitig.batch_hist.<2^k>] (poll-batch size histogram, power-of-two
    buckets) and [mitig.reenable] (empty rounds that re-enabled the
    interrupt). *)

val drop_counter : string
val shed_counter : string
val retry_counter : string
val backoff_counter : string
val queue_peak_prefix : string
val nic_drop_counter : string

val ring_reject_prefix : string
(** [overload.ring_reject.<dev>] — producer-side pushes a full shared
    ring refused (back-pressure the producer absorbs by retrying), as
    opposed to [overload.drop], which counts payload actually lost.
    Conflating the two double-counted retried tx attempts as drops —
    the E17 bugfix sweep separated them. *)

val fair_admit_counter : string
(** [overload.fair.admit] — admissions through a {!Weighted_buckets}
    gate. *)

val fair_shed_counter : string
(** [overload.fair.shed] — sheds at a {!Weighted_buckets} gate; also
    itemized per client under [overload.fair.shed.<key>]. *)

val fair_shed_prefix : string

val ecn_mark_counter : string
(** [overload.ecn_mark] — congestion marks propagated back to a
    sender (a bounded queue past its high watermark, E17). *)

(** [overload.ecn_backoff] — sender backoffs triggered by a mark
    {e before} any drop occurred. *)
val ecn_backoff_counter : string
val mitig_coalesced_counter : string
val mitig_poll_rounds_counter : string
val mitig_batch_hist_prefix : string
val mitig_reenable_counter : string

(** Deterministic token bucket: one token refills every [period] virtual
    cycles, up to [burst]. Over any window of [w] cycles at most
    [burst + w/period + 1] requests are admitted (the rate property the
    qcheck test asserts). Purely integer arithmetic — no float drift. *)
module Token_bucket : sig
  type t

  val create : period:int64 -> burst:int -> unit -> t
  (** @raise Invalid_argument if [period < 1] or [burst < 1]. *)

  val admit : t -> now:int64 -> bool
  (** Take one token at virtual time [now]; [false] = shed the work.
      [now] must not decrease across calls (virtual time never does). *)

  val admit_n : t -> now:int64 -> int -> int
  (** [admit_n t ~now n] admits as many of a batch of [n] as the bucket
      allows after one refill, returning how many were admitted (a prefix
      of the batch; the rest are denied). Equivalent to [n] same-cycle
      {!admit} calls.

      @raise Invalid_argument on a negative [n]. *)

  val available : t -> now:int64 -> int
  val admitted : t -> int
  val denied : t -> int
  val burst : t -> int
  val period : t -> int64
end

(** A bounded FIFO with an explicit policy for the full case — the
    replacement for the unbounded [Queue.t]s that let latency grow
    without limit under overload. *)
module Bounded_queue : sig
  type policy =
    | Reject  (** Refuse the newest item (tail drop). *)
    | Drop_oldest  (** Evict the head to make room (fresh data wins). *)
    | Block_with_deadline of int64
        (** The queue itself never blocks (it is pure bookkeeping);
            pushes into a full queue return {!Retry_until} [now + d] and
            the producer is expected to back off and retry until that
            deadline — see {!Backoff}. *)

  type 'a outcome =
    | Accepted
    | Rejected
    | Displaced of 'a  (** Accepted, but this older item was evicted. *)
    | Retry_until of int64  (** Absolute deadline to retry until. *)

  type 'a t

  val create : ?policy:policy -> ?mark_at:int -> capacity:int -> unit -> 'a t
  (** Default policy {!Reject}. [mark_at] is the ECN high watermark:
      once {!length} reaches it, {!marked} reports congestion so
      producers can back off {e before} the queue fills and drops
      (E17). Without it the queue never marks.
      @raise Invalid_argument if [capacity < 1] or [mark_at < 1]. *)

  val push : 'a t -> now:int64 -> 'a -> 'a outcome
  val pop : 'a t -> 'a option

  val drop_head : 'a t -> bool
  (** Discard the oldest item without materializing it — the
      allocation-free form of [ignore (pop t)]. [false] when empty. *)

  val length : 'a t -> int
  val capacity : 'a t -> int
  val policy : 'a t -> policy
  val is_empty : 'a t -> bool
  val accepted : 'a t -> int
  val rejected : 'a t -> int
  val displaced : 'a t -> int

  val peak : 'a t -> int
  (** High-water mark of {!length} — never exceeds {!capacity} (the
      boundedness property the qcheck test asserts). *)

  val marked : 'a t -> bool
  (** [true] while {!length} is at or above the [mark_at] watermark —
      the ECN congestion bit. Each [true] observation is also counted
      (see {!marks}). *)

  val marks : 'a t -> int
  (** How many {!marked} observations came back [true]. *)
end

(** Per-client fair-share admission (E17): one deterministic
    {!Token_bucket} per client key, refilling at [period / weight] — so
    a client with weight 2 is admitted twice the rate of a weight-1
    client, and an aggressive client exhausts only its own bucket.
    Decisions are itemized under [overload.fair.admit] /
    [overload.fair.shed] (plus [overload.fair.shed.<key>]) when a
    counter set is supplied. *)
module Weighted_buckets : sig
  type t

  val create :
    ?counters:Vmk_trace.Counter.set -> period:int64 -> burst:int -> unit -> t
  (** [period] is the weight-1 refill period; every bucket gets the same
      [burst]. @raise Invalid_argument if [period < 1] or [burst < 1]. *)

  val set_weight : t -> key:int -> int -> unit
  (** Set a client's fair share (default 1).
      @raise Invalid_argument on [weight < 1]. *)

  val weight : t -> key:int -> int

  val admit : t -> key:int -> now:int64 -> bool
  (** Take one token from [key]'s bucket (created on first use);
      [false] = shed this client's work. *)

  val admitted : t -> int
  val shed : t -> int

  val shed_of : t -> key:int -> int
  (** Sheds charged to one client so far. *)
end

(** Client retry schedule: exponential backoff with seeded jitter.
    Attempt [n] waits [min (base·factor^n) cap + jitter_n] cycles where
    [jitter_n] is a fresh draw in [\[0, jitter)] from the stream given at
    create time — deterministic per (seed, call sequence). *)
module Backoff : sig
  type t

  val create :
    ?attempts:int ->
    ?base:int64 ->
    ?factor:int ->
    ?cap:int64 ->
    ?jitter:int ->
    Vmk_sim.Rng.t ->
    t
  (** Defaults: 5 attempts, base 100k cycles, factor 2, cap 3.2M,
      jitter 1000. Split the machine RNG for the stream. *)

  val attempts : t -> int

  val delay : t -> attempt:int -> int64
  (** Delay before retrying after failed attempt [attempt] (0-based).
      Draws the jitter, so the call sequence matters for determinism. *)

  val run :
    t ->
    counters:Vmk_trace.Counter.set ->
    sleep:(int64 -> unit) ->
    (unit -> 'a option) ->
    'a option
  (** [run t ~counters ~sleep try_once] retries [try_once] up to
      [attempts] times, sleeping the scheduled delay between failures
      via [sleep] and itemizing [overload.retry] /
      [overload.backoff_cycles]. [None] when every attempt failed. *)
end

val note_queue_peak : Vmk_trace.Counter.set -> name:string -> int -> unit
(** Record a queue-depth observation under [overload.queue_peak.<name>]
    (the counter keeps the maximum seen). *)

val queue_peak_id : Vmk_trace.Counter.set -> name:string -> int
(** Intern [overload.queue_peak.<name>] once at wiring time; feed the
    id to {!note_queue_peak_id} on the hot path. *)

val note_queue_peak_id : Vmk_trace.Counter.set -> int -> int -> unit
(** [note_queue_peak_id counters id depth] — allocation-free form of
    {!note_queue_peak} over a pre-resolved id. *)

val note_batch : Vmk_trace.Counter.set -> int -> unit
(** Record one poll batch of the given size under
    [mitig.batch_hist.<2^k>] where [2^k] is the largest power of two not
    exceeding the size. Sizes [< 1] are ignored. *)

type batch_hist
(** Pre-interned [mitig.batch_hist.*] bucket ids for one counter set. *)

val batch_hist : Vmk_trace.Counter.set -> batch_hist
(** Intern every power-of-two bucket once at wiring time. *)

val note_batch_hist : Vmk_trace.Counter.set -> batch_hist -> int -> unit
(** Allocation-free form of {!note_batch} over pre-resolved ids. *)
