module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter

let drop_counter = "overload.drop"
let shed_counter = "overload.shed"
let retry_counter = "overload.retry"
let backoff_counter = "overload.backoff_cycles"
let queue_peak_prefix = "overload.queue_peak."
let nic_drop_counter = "overload.nic_drop"
let ring_reject_prefix = "overload.ring_reject."
let fair_admit_counter = "overload.fair.admit"
let fair_shed_counter = "overload.fair.shed"
let fair_shed_prefix = "overload.fair.shed."
let ecn_mark_counter = "overload.ecn_mark"
let ecn_backoff_counter = "overload.ecn_backoff"
let mitig_coalesced_counter = "mitig.irq_coalesced"
let mitig_poll_rounds_counter = "mitig.poll_rounds"
let mitig_batch_hist_prefix = "mitig.batch_hist."
let mitig_reenable_counter = "mitig.reenable"

module Token_bucket = struct
  type t = {
    period : int64;
    burst : int;
    mutable tokens : int;
    mutable last_refill : int64;
    mutable admitted : int;
    mutable denied : int;
  }

  let create ~period ~burst () =
    if Int64.compare period 1L < 0 then
      invalid_arg "Token_bucket.create: period < 1";
    if burst < 1 then invalid_arg "Token_bucket.create: burst < 1";
    { period; burst; tokens = burst; last_refill = 0L; admitted = 0; denied = 0 }

  (* Integer refill: one token per [period] elapsed cycles, capped at
     [burst]. On cap, re-anchor at [now] so idle time is not banked
     beyond the burst. *)
  let refill t ~now =
    if Int64.compare now t.last_refill > 0 then begin
      let elapsed = Int64.sub now t.last_refill in
      let fresh = Int64.to_int (Int64.div elapsed t.period) in
      if t.tokens + fresh >= t.burst then begin
        t.tokens <- t.burst;
        t.last_refill <- now
      end
      else begin
        t.tokens <- t.tokens + fresh;
        t.last_refill <-
          Int64.add t.last_refill (Int64.mul (Int64.of_int fresh) t.period)
      end
    end

  let admit t ~now =
    refill t ~now;
    if t.tokens > 0 then begin
      t.tokens <- t.tokens - 1;
      t.admitted <- t.admitted + 1;
      true
    end
    else begin
      t.denied <- t.denied + 1;
      false
    end

  (* Batch admission: one refill, then take as many of the [n] requested
     tokens as the bucket holds. Equivalent to [n] same-cycle [admit]
     calls, minus n-1 refill computations — the admission-cost analogue of
     the NIC's per-batch poll cost. *)
  let admit_n t ~now n =
    if n < 0 then invalid_arg "Token_bucket.admit_n: negative batch";
    refill t ~now;
    let k = min t.tokens n in
    t.tokens <- t.tokens - k;
    t.admitted <- t.admitted + k;
    t.denied <- t.denied + (n - k);
    k

  let available t ~now =
    refill t ~now;
    t.tokens

  let admitted t = t.admitted
  let denied t = t.denied
  let burst t = t.burst
  let period t = t.period
end

module Bounded_queue = struct
  type policy = Reject | Drop_oldest | Block_with_deadline of int64

  type 'a outcome =
    | Accepted
    | Rejected
    | Displaced of 'a
    | Retry_until of int64

  type 'a t = {
    capacity : int;
    policy : policy;
    mark_at : int;
    items : 'a Queue.t;
    mutable accepted : int;
    mutable rejected : int;
    mutable displaced : int;
    mutable marks : int;
    mutable peak : int;
  }

  let create ?(policy = Reject) ?mark_at ~capacity () =
    if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
    (match mark_at with
    | Some m when m < 1 -> invalid_arg "Bounded_queue.create: mark_at < 1"
    | Some _ | None -> ());
    {
      capacity;
      policy;
      (* No watermark = never marked ([capacity + 1] is unreachable
         since [length <= capacity]). *)
      mark_at = Option.value mark_at ~default:(capacity + 1);
      items = Queue.create ();
      accepted = 0;
      rejected = 0;
      displaced = 0;
      marks = 0;
      peak = 0;
    }

  let accept t x =
    Queue.add x t.items;
    t.accepted <- t.accepted + 1;
    if Queue.length t.items > t.peak then t.peak <- Queue.length t.items

  let push t ~now x =
    if Queue.length t.items < t.capacity then begin
      accept t x;
      Accepted
    end
    else
      match t.policy with
      | Reject ->
          t.rejected <- t.rejected + 1;
          Rejected
      | Drop_oldest ->
          let old = Queue.take t.items in
          t.displaced <- t.displaced + 1;
          accept t x;
          Displaced old
      | Block_with_deadline window ->
          t.rejected <- t.rejected + 1;
          Retry_until (Int64.add now window)

  let pop t = Queue.take_opt t.items
  let length t = Queue.length t.items
  let capacity t = t.capacity
  let policy t = t.policy
  let is_empty t = Queue.is_empty t.items
  let accepted t = t.accepted
  let rejected t = t.rejected
  let displaced t = t.displaced
  let peak t = t.peak

  (* ECN-style early notification: the congestion signal fires while
     there is still room, so the producer can back off before anything
     is dropped. *)
  let marked t =
    let m = Queue.length t.items >= t.mark_at in
    if m then t.marks <- t.marks + 1;
    m

  let marks t = t.marks
end

(* Per-client fair-share admission: one token bucket per demux key, the
   key's weight scaling its refill rate (weight 2 = twice the tokens).
   An aggressive client exhausts only its own bucket — the victim's
   share survives the overload (the E15 follow-up the ROADMAP names). *)
module Weighted_buckets = struct
  type t = {
    period : int64;  (** Refill period at weight 1. *)
    burst : int;
    counters : Counter.set option;
    weights : (int, int) Hashtbl.t;
    buckets : (int, Token_bucket.t) Hashtbl.t;
    mutable admitted : int;
    mutable shed : int;
  }

  let create ?counters ~period ~burst () =
    if Int64.compare period 1L < 0 then
      invalid_arg "Weighted_buckets.create: period < 1";
    if burst < 1 then invalid_arg "Weighted_buckets.create: burst < 1";
    {
      period;
      burst;
      counters;
      weights = Hashtbl.create 8;
      buckets = Hashtbl.create 8;
      admitted = 0;
      shed = 0;
    }

  let weight t ~key = Option.value (Hashtbl.find_opt t.weights key) ~default:1

  let set_weight t ~key w =
    if w < 1 then invalid_arg "Weighted_buckets.set_weight: weight < 1";
    Hashtbl.replace t.weights key w;
    (* Any existing bucket was built at the old rate; rebuild lazily. *)
    Hashtbl.remove t.buckets key

  let bucket_for t key =
    match Hashtbl.find_opt t.buckets key with
    | Some b -> b
    | None ->
        let w = weight t ~key in
        let period =
          let p = Int64.div t.period (Int64.of_int w) in
          if Int64.compare p 1L < 0 then 1L else p
        in
        let b = Token_bucket.create ~period ~burst:t.burst () in
        Hashtbl.add t.buckets key b;
        b

  let admit t ~key ~now =
    let ok = Token_bucket.admit (bucket_for t key) ~now in
    (match t.counters with
    | None -> ()
    | Some c ->
        if ok then Counter.incr c fair_admit_counter
        else begin
          Counter.incr c fair_shed_counter;
          Counter.incr c (fair_shed_prefix ^ string_of_int key)
        end);
    if ok then t.admitted <- t.admitted + 1 else t.shed <- t.shed + 1;
    ok

  let admitted t = t.admitted
  let shed t = t.shed

  let shed_of t ~key =
    match Hashtbl.find_opt t.buckets key with
    | Some b -> Token_bucket.denied b
    | None -> 0
end

module Backoff = struct
  type t = {
    attempts : int;
    base : int64;
    factor : int;
    cap : int64;
    jitter : int;
    rng : Rng.t;
  }

  let create ?(attempts = 5) ?(base = 100_000L) ?(factor = 2)
      ?(cap = 3_200_000L) ?(jitter = 1_000) rng =
    if attempts < 1 then invalid_arg "Backoff.create: attempts < 1";
    if Int64.compare base 0L < 0 then invalid_arg "Backoff.create: base < 0";
    if factor < 1 then invalid_arg "Backoff.create: factor < 1";
    if jitter < 0 then invalid_arg "Backoff.create: jitter < 0";
    { attempts; base; factor; cap; jitter; rng }

  let attempts t = t.attempts

  let delay t ~attempt =
    let rec scale d n =
      if n <= 0 then d
      else
        let next = Int64.mul d (Int64.of_int t.factor) in
        if Int64.compare next t.cap >= 0 then t.cap else scale next (n - 1)
    in
    let backoff =
      if Int64.compare t.base t.cap >= 0 then t.cap else scale t.base attempt
    in
    let jitter = if t.jitter = 0 then 0L else Int64.of_int (Rng.int t.rng t.jitter) in
    Int64.add backoff jitter

  (* Retry loop shared by the client ports: [try_once] returns [Some _]
     on success; between failed attempts the caller-supplied [sleep]
     spends the backoff delay (IPC sleep, blocked hypercall, ...).
     Retries and cycles spent backing off are itemized machine-wide. *)
  let run t ~counters ~sleep try_once =
    let rec attempt n =
      match try_once () with
      | Some _ as result -> result
      | None ->
          if n + 1 >= t.attempts then None
          else begin
            let d = delay t ~attempt:n in
            Counter.incr counters retry_counter;
            Counter.add counters backoff_counter (Int64.to_int d);
            sleep d;
            attempt (n + 1)
          end
    in
    attempt 0
end

let note_queue_peak counters ~name depth =
  let key = queue_peak_prefix ^ name in
  if depth > Counter.get counters key then
    Counter.add counters key (depth - Counter.get counters key)

let note_batch counters n =
  if n > 0 then begin
    (* Power-of-two buckets: 1, 2, 4, ... — a poll-batch size histogram
       cheap enough to live on the hot path. *)
    let rec bucket b = if b * 2 <= n then bucket (b * 2) else b in
    let key = mitig_batch_hist_prefix ^ string_of_int (bucket 1) in
    Counter.incr counters key
  end
