module Rng = Vmk_sim.Rng
module Counter = Vmk_trace.Counter

let drop_counter = "overload.drop"
let shed_counter = "overload.shed"
let retry_counter = "overload.retry"
let backoff_counter = "overload.backoff_cycles"
let queue_peak_prefix = "overload.queue_peak."
let nic_drop_counter = "overload.nic_drop"
let ring_reject_prefix = "overload.ring_reject."
let fair_admit_counter = "overload.fair.admit"
let fair_shed_counter = "overload.fair.shed"
let fair_shed_prefix = "overload.fair.shed."
let ecn_mark_counter = "overload.ecn_mark"
let ecn_backoff_counter = "overload.ecn_backoff"
let mitig_coalesced_counter = "mitig.irq_coalesced"
let mitig_poll_rounds_counter = "mitig.poll_rounds"
let mitig_batch_hist_prefix = "mitig.batch_hist."
let mitig_reenable_counter = "mitig.reenable"

module Token_bucket = struct
  (* Native-int arithmetic throughout: virtual cycles fit comfortably
     in 63 bits, and a [mutable int64] field would box on every refill
     — the kind of per-admission allocation E21 removes. *)
  type t = {
    period : int;
    burst : int;
    mutable tokens : int;
    mutable last_refill : int;
    mutable admitted : int;
    mutable denied : int;
  }

  let create ~period ~burst () =
    if Int64.compare period 1L < 0 then
      invalid_arg "Token_bucket.create: period < 1";
    if burst < 1 then invalid_arg "Token_bucket.create: burst < 1";
    {
      period = Int64.to_int period;
      burst;
      tokens = burst;
      last_refill = 0;
      admitted = 0;
      denied = 0;
    }

  (* Integer refill: one token per [period] elapsed cycles, capped at
     [burst]. On cap, re-anchor at [now] so idle time is not banked
     beyond the burst. *)
  let refill t ~now =
    if now > t.last_refill then begin
      let fresh = (now - t.last_refill) / t.period in
      if t.tokens + fresh >= t.burst then begin
        t.tokens <- t.burst;
        t.last_refill <- now
      end
      else begin
        t.tokens <- t.tokens + fresh;
        t.last_refill <- t.last_refill + (fresh * t.period)
      end
    end

  let admit t ~now =
    refill t ~now:(Int64.to_int now);
    if t.tokens > 0 then begin
      t.tokens <- t.tokens - 1;
      t.admitted <- t.admitted + 1;
      true
    end
    else begin
      t.denied <- t.denied + 1;
      false
    end

  (* Batch admission: one refill, then take as many of the [n] requested
     tokens as the bucket holds. Equivalent to [n] same-cycle [admit]
     calls, minus n-1 refill computations — the admission-cost analogue of
     the NIC's per-batch poll cost. *)
  let admit_n t ~now n =
    if n < 0 then invalid_arg "Token_bucket.admit_n: negative batch";
    refill t ~now:(Int64.to_int now);
    let k = min t.tokens n in
    t.tokens <- t.tokens - k;
    t.admitted <- t.admitted + k;
    t.denied <- t.denied + (n - k);
    k

  let available t ~now =
    refill t ~now:(Int64.to_int now);
    t.tokens

  let admitted t = t.admitted
  let denied t = t.denied
  let burst t = t.burst
  let period t = Int64.of_int t.period
end

module Bounded_queue = struct
  type policy = Reject | Drop_oldest | Block_with_deadline of int64

  type 'a outcome =
    | Accepted
    | Rejected
    | Displaced of 'a
    | Retry_until of int64

  (* Circular buffer instead of [Queue.t]: a steady-state push/pop
     cycle touches only the slot array — no list cells. The slot array
     is created on the first push (no witness of ['a] before then) and
     doubles up to [capacity] — which may be [max_int] for the "naive
     unbounded" configurations, so it is a growth bound, never a
     preallocation size. *)
  type 'a t = {
    capacity : int;
    policy : policy;
    mark_at : int;
    mutable slots : 'a array;  (* length 0 until the first push *)
    mutable head : int;  (* index of the oldest item *)
    mutable len : int;
    mutable accepted : int;
    mutable rejected : int;
    mutable displaced : int;
    mutable marks : int;
    mutable peak : int;
  }

  let create ?(policy = Reject) ?mark_at ~capacity () =
    if capacity < 1 then invalid_arg "Bounded_queue.create: capacity < 1";
    (match mark_at with
    | Some m when m < 1 -> invalid_arg "Bounded_queue.create: mark_at < 1"
    | Some _ | None -> ());
    {
      capacity;
      policy;
      (* No watermark = never marked ([capacity + 1] is unreachable
         since [length <= capacity]). *)
      mark_at = Option.value mark_at ~default:(capacity + 1);
      slots = [||];
      head = 0;
      len = 0;
      accepted = 0;
      rejected = 0;
      displaced = 0;
      marks = 0;
      peak = 0;
    }

  let accept t x =
    let cap = Array.length t.slots in
    if t.len = cap then begin
      (* First push, or the physical ring is full while still under the
         logical capacity: (re)build at double size, unrolled. *)
      let ncap =
        if cap = 0 then min t.capacity 16
        else if cap >= t.capacity / 2 then t.capacity
        else cap * 2
      in
      let slots = Array.make ncap x in
      for i = 0 to t.len - 1 do
        let j = t.head + i in
        slots.(i) <- t.slots.(if j >= cap then j - cap else j)
      done;
      t.slots <- slots;
      t.head <- 0
    end;
    let cap = Array.length t.slots in
    let tail = t.head + t.len in
    let tail = if tail >= cap then tail - cap else tail in
    t.slots.(tail) <- x;
    t.len <- t.len + 1;
    t.accepted <- t.accepted + 1;
    if t.len > t.peak then t.peak <- t.len

  let take t =
    let x = t.slots.(t.head) in
    t.head <- (if t.head + 1 >= Array.length t.slots then 0 else t.head + 1);
    t.len <- t.len - 1;
    x

  let push t ~now x =
    if t.len < t.capacity then begin
      accept t x;
      Accepted
    end
    else
      match t.policy with
      | Reject ->
          t.rejected <- t.rejected + 1;
          Rejected
      | Drop_oldest ->
          let old = take t in
          t.displaced <- t.displaced + 1;
          accept t x;
          Displaced old
      | Block_with_deadline window ->
          t.rejected <- t.rejected + 1;
          Retry_until (Int64.add now window)

  let pop t = if t.len = 0 then None else Some (take t)

  let drop_head t =
    if t.len = 0 then false
    else begin
      ignore (take t);
      true
    end

  let length t = t.len
  let capacity t = t.capacity
  let policy t = t.policy
  let is_empty t = t.len = 0
  let accepted t = t.accepted
  let rejected t = t.rejected
  let displaced t = t.displaced
  let peak t = t.peak

  (* ECN-style early notification: the congestion signal fires while
     there is still room, so the producer can back off before anything
     is dropped. *)
  let marked t =
    let m = t.len >= t.mark_at in
    if m then t.marks <- t.marks + 1;
    m

  let marks t = t.marks
end

(* Per-client fair-share admission: one token bucket per demux key, the
   key's weight scaling its refill rate (weight 2 = twice the tokens).
   An aggressive client exhausts only its own bucket — the victim's
   share survives the overload (the E15 follow-up the ROADMAP names). *)
module Weighted_buckets = struct
  (* The per-key shed counter id is resolved when the bucket is built,
     so the admit path never concatenates a key into a counter name. *)
  type slot = { tb : Token_bucket.t; shed_id : int }

  (* Demux keys are small non-negative ints (guest/port ids); a dense
     array lookup beats a Hashtbl probe and allocates nothing. Keys
     outside the dense range fall back to a Hashtbl. *)
  let dense_limit = 4096

  type t = {
    period : int64;  (** Refill period at weight 1. *)
    burst : int;
    counters : Counter.set option;
    fair_admit_id : int;  (* -1 when no counter set *)
    fair_shed_id : int;
    weights : (int, int) Hashtbl.t;
    mutable dense : slot option array;
    others : (int, slot) Hashtbl.t;
    mutable admitted : int;
    mutable shed : int;
  }

  let create ?counters ~period ~burst () =
    if Int64.compare period 1L < 0 then
      invalid_arg "Weighted_buckets.create: period < 1";
    if burst < 1 then invalid_arg "Weighted_buckets.create: burst < 1";
    let cid name =
      match counters with None -> -1 | Some c -> Counter.id c name
    in
    {
      period;
      burst;
      counters;
      fair_admit_id = cid fair_admit_counter;
      fair_shed_id = cid fair_shed_counter;
      weights = Hashtbl.create 8;
      dense = Array.make 16 None;
      others = Hashtbl.create 8;
      admitted = 0;
      shed = 0;
    }

  let weight t ~key = Option.value (Hashtbl.find_opt t.weights key) ~default:1

  let set_weight t ~key w =
    if w < 1 then invalid_arg "Weighted_buckets.set_weight: weight < 1";
    Hashtbl.replace t.weights key w;
    (* Any existing bucket was built at the old rate; rebuild lazily. *)
    if key >= 0 && key < Array.length t.dense then t.dense.(key) <- None
    else Hashtbl.remove t.others key

  let build t key =
    let w = weight t ~key in
    let period =
      let p = Int64.div t.period (Int64.of_int w) in
      if Int64.compare p 1L < 0 then 1L else p
    in
    let shed_id =
      match t.counters with
      | None -> -1
      | Some c -> Counter.id c (fair_shed_prefix ^ string_of_int key)
    in
    { tb = Token_bucket.create ~period ~burst:t.burst (); shed_id }

  let bucket_for t key =
    if key >= 0 && key < dense_limit then begin
      if key >= Array.length t.dense then begin
        let cap = ref (Array.length t.dense) in
        while key >= !cap do
          cap := !cap * 2
        done;
        let dense = Array.make !cap None in
        Array.blit t.dense 0 dense 0 (Array.length t.dense);
        t.dense <- dense
      end;
      match t.dense.(key) with
      | Some s -> s
      | None ->
          let s = build t key in
          t.dense.(key) <- Some s;
          s
    end
    else
      match Hashtbl.find_opt t.others key with
      | Some s -> s
      | None ->
          let s = build t key in
          Hashtbl.add t.others key s;
          s

  let admit t ~key ~now =
    let slot = bucket_for t key in
    let ok = Token_bucket.admit slot.tb ~now in
    (match t.counters with
    | None -> ()
    | Some c ->
        if ok then Counter.incr_id c t.fair_admit_id
        else begin
          Counter.incr_id c t.fair_shed_id;
          Counter.incr_id c slot.shed_id
        end);
    if ok then t.admitted <- t.admitted + 1 else t.shed <- t.shed + 1;
    ok

  let admitted t = t.admitted
  let shed t = t.shed

  let shed_of t ~key =
    let slot =
      if key >= 0 && key < Array.length t.dense then t.dense.(key)
      else Hashtbl.find_opt t.others key
    in
    match slot with Some s -> Token_bucket.denied s.tb | None -> 0
end

module Backoff = struct
  type t = {
    attempts : int;
    base : int64;
    factor : int;
    cap : int64;
    jitter : int;
    rng : Rng.t;
  }

  let create ?(attempts = 5) ?(base = 100_000L) ?(factor = 2)
      ?(cap = 3_200_000L) ?(jitter = 1_000) rng =
    if attempts < 1 then invalid_arg "Backoff.create: attempts < 1";
    if Int64.compare base 0L < 0 then invalid_arg "Backoff.create: base < 0";
    if factor < 1 then invalid_arg "Backoff.create: factor < 1";
    if jitter < 0 then invalid_arg "Backoff.create: jitter < 0";
    { attempts; base; factor; cap; jitter; rng }

  let attempts t = t.attempts

  let delay t ~attempt =
    let rec scale d n =
      if n <= 0 then d
      else
        let next = Int64.mul d (Int64.of_int t.factor) in
        if Int64.compare next t.cap >= 0 then t.cap else scale next (n - 1)
    in
    let backoff =
      if Int64.compare t.base t.cap >= 0 then t.cap else scale t.base attempt
    in
    let jitter = if t.jitter = 0 then 0L else Int64.of_int (Rng.int t.rng t.jitter) in
    Int64.add backoff jitter

  (* Retry loop shared by the client ports: [try_once] returns [Some _]
     on success; between failed attempts the caller-supplied [sleep]
     spends the backoff delay (IPC sleep, blocked hypercall, ...).
     Retries and cycles spent backing off are itemized machine-wide. *)
  let run t ~counters ~sleep try_once =
    let rec attempt n =
      match try_once () with
      | Some _ as result -> result
      | None ->
          if n + 1 >= t.attempts then None
          else begin
            let d = delay t ~attempt:n in
            Counter.incr counters retry_counter;
            Counter.add counters backoff_counter (Int64.to_int d);
            sleep d;
            attempt (n + 1)
          end
    in
    attempt 0
end

let note_queue_peak counters ~name depth =
  let key = queue_peak_prefix ^ name in
  if depth > Counter.get counters key then
    Counter.add counters key (depth - Counter.get counters key)

let queue_peak_id counters ~name = Counter.id counters (queue_peak_prefix ^ name)

let note_queue_peak_id counters id depth =
  let cur = Counter.get_id counters id in
  if depth > cur then Counter.add_id counters id (depth - cur)

(* Power-of-two poll-batch histogram. The bucket ids are interned once
   per counter set ([batch_hist]) so the per-batch note is an array
   store, not a [string_of_int] concat. *)
type batch_hist = int array

let batch_hist counters =
  Array.init 31 (fun k ->
      Counter.id counters (mitig_batch_hist_prefix ^ string_of_int (1 lsl k)))

let note_batch_hist counters (h : batch_hist) n =
  if n > 0 then begin
    let rec log2 b k = if b * 2 <= n then log2 (b * 2) (k + 1) else k in
    Counter.incr_id counters h.(log2 1 0)
  end

let note_batch counters n =
  if n > 0 then begin
    (* Power-of-two buckets: 1, 2, 4, ... — a poll-batch size histogram
       cheap enough to live on the hot path. *)
    let rec bucket b = if b * 2 <= n then bucket (b * 2) else b in
    let key = mitig_batch_hist_prefix ^ string_of_int (bucket 1) in
    Counter.incr counters key
  end
