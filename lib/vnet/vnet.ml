module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload

(* Packet addressing shares the machine-wide demux convention
   (tag = dst·10⁶ + src·10⁴ + seq, see {!Vmk_guest.Sys}): the switch
   never parses tags itself — callers hand it a decoded packet.

   E21: every structure on the forwarding path is an int array — open
   addressing instead of [Hashtbl] (whose [find_opt] allocates an
   option per probe), circular int rings instead of [Queue] cells,
   native-int timestamps instead of boxed [int64] fields — so a
   steady-state forward touches nothing on the OCaml heap. *)
type pkt = { src : int; dst : int; len : int; tag : int }

let broadcast = 0

(* Cycle prices of the forwarding decision, charged through the
   caller-supplied [burn] so each stack bills the right account (Dom0
   for the bridge, the net server for the broker). A flow-cache hit
   skips the MAC-table walk — the gap the E17 hit-ratio sweep
   measures. *)
let flow_hit_cost = 40
let flow_miss_cost = 180
let enqueue_cost = 25

(* Fibonacci-style int hash, good enough to spread small dense ids. *)
(* Fibonacci hash; probe sites inline the multiply and fold the
   [land max_int] into their power-of-two slot mask. *)
let _hash_int k = (k * 0x9E3779B1) land max_int

(* --- learning MAC table with aging ------------------------------- *)

module Mac_table = struct
  (* Open-addressing with linear probing and tombstones; slot states
     live in a byte string (0 empty, 1 used, 2 dead). Capacity is a
     power of two, resized at 3/4 fill. *)
  let empty = '\000'
  let used = '\001'
  let dead = '\002'

  type t = {
    ttl : int;
    mutable keys : int array;  (* mac *)
    mutable ports : int array;
    mutable seen : int array;  (* last activity, virtual cycles *)
    mutable state : Bytes.t;
    mutable live : int;
    mutable filled : int;  (* live + tombstones *)
    mutable learns : int;
    mutable moves : int;
    mutable expiries : int;
    (* Bumped on every structural change (insert, move, expiry,
       resize) — NOT on [seen] refreshes. A cached (slot, binding)
       pair is valid exactly while this is unchanged; the switch's
       per-port route memo keys on it. *)
    mutable gen : int;
  }

  let create ?(ttl = 1_000_000_000L) () =
    if Int64.compare ttl 1L < 0 then invalid_arg "Mac_table.create: ttl < 1";
    {
      ttl = Int64.to_int ttl;
      keys = Array.make 16 0;
      ports = Array.make 16 0;
      seen = Array.make 16 0;
      state = Bytes.make 16 empty;
      live = 0;
      filled = 0;
      learns = 0;
      moves = 0;
      expiries = 0;
      gen = 0;
    }

  (* Find [mac]'s slot, or the insertion slot when absent. Returns the
     slot index; [Bytes.get t.state i <> used] means absent. *)
  let[@inline] probe t mac =
    let mask = Array.length t.keys - 1 in
    (* [land mask] with a positive mask already clears the sign bit,
       so the extra [land max_int] inside {!hash_int} is redundant —
       the slot is identical. *)
    let i = ref (mac * 0x9E3779B1 land mask) in
    let free = ref (-1) in
    let result = ref (-1) in
    while !result < 0 do
      let s = Bytes.unsafe_get t.state !i in
      if s = empty then result := (if !free >= 0 then !free else !i)
      else if s = dead then begin
        if !free < 0 then free := !i;
        i := (!i + 1) land mask
      end
      else if Array.unsafe_get t.keys !i = mac then result := !i
      else i := (!i + 1) land mask
    done;
    !result

  let resize t =
    let okeys = t.keys and oports = t.ports and oseen = t.seen in
    let ostate = t.state in
    let ncap = 2 * Array.length okeys in
    t.keys <- Array.make ncap 0;
    t.ports <- Array.make ncap 0;
    t.seen <- Array.make ncap 0;
    t.state <- Bytes.make ncap empty;
    t.live <- 0;
    t.filled <- 0;
    t.gen <- t.gen + 1;
    Array.iteri
      (fun i mac ->
        if Bytes.get ostate i = used then begin
          let j = probe t mac in
          t.keys.(j) <- mac;
          t.ports.(j) <- oports.(i);
          t.seen.(j) <- oseen.(i);
          Bytes.set t.state j used;
          t.live <- t.live + 1;
          t.filled <- t.filled + 1
        end)
      okeys

  let learn_slow t now mac port =
    let i = probe t mac in
    if Bytes.get t.state i = used then begin
      if t.ports.(i) <> port then begin
        (* Station moved (or the guest was replugged): rebind. *)
        t.ports.(i) <- port;
        t.moves <- t.moves + 1;
        t.gen <- t.gen + 1
      end;
      t.seen.(i) <- now
    end
    else begin
      if Bytes.get t.state i = empty then t.filled <- t.filled + 1;
      t.keys.(i) <- mac;
      t.ports.(i) <- port;
      t.seen.(i) <- now;
      Bytes.set t.state i used;
      t.live <- t.live + 1;
      t.learns <- t.learns + 1;
      t.gen <- t.gen + 1;
      if 4 * t.filled > 3 * Array.length t.keys then resize t
    end

  (* Bounded resident scan for the hot paths: the slot holding [mac],
     [-1] when it is definitely absent (the probe chain ended at an
     empty slot), [-2] when a tombstone makes absence ambiguous —
     callers fall back to the general probe. No statistics touched, so
     using it never perturbs counter dumps. Unlike a single home-slot
     check, this keeps entries displaced by a hash collision on the
     fast path (small tables make such collisions routine). *)
  let[@inline] hit_slot t mac =
    let keys = t.keys in
    let mask = Array.length keys - 1 in
    let i = ref (mac * 0x9E3779B1 land mask) in
    let r = ref min_int in
    while !r = min_int do
      let s = Bytes.unsafe_get t.state !i in
      if s = used then
        if Array.unsafe_get keys !i = mac then r := !i
        else i := (!i + 1) land mask
      else if s = empty then r := -1
      else r := -2
    done;
    !r

  (* Steady state is a same-port refresh: a short resident scan and
     three word ops. Everything else (moves, inserts, tombstoned
     tables) falls through to the general probe. *)
  let[@inline] learn t ~now ~mac ~port =
    let now = Int64.to_int now in
    let i = hit_slot t mac in
    if i >= 0 && Array.unsafe_get t.ports i = port then
      Array.unsafe_set t.seen i now
    else learn_slow t now mac port

  (* Allocation-free resolve: [-1] = miss. Expired entries are removed
     and miss — the packet floods like an unknown destination. *)
  let lookup_port t ~now mac =
    let now = Int64.to_int now in
    let i = probe t mac in
    if Bytes.get t.state i <> used then -1
    else if now - t.seen.(i) > t.ttl then begin
      Bytes.set t.state i dead;
      t.live <- t.live - 1;
      t.expiries <- t.expiries + 1;
      t.gen <- t.gen + 1;
      -1
    end
    else t.ports.(i)

  let lookup t ~now mac =
    match lookup_port t ~now mac with -1 -> None | p -> Some p

  let size t = t.live
  let learns t = t.learns
  let moves t = t.moves
  let expiries t = t.expiries
end

(* --- bounded flow cache with hit/miss accounting ----------------- *)

module Flow_cache = struct
  let empty = '\000'
  let used = '\001'
  let dead = '\002'

  type t = {
    capacity : int;
    mutable srcs : int array;
    mutable dsts : int array;
    mutable ports : int array;
    mutable state : Bytes.t;
    mutable live : int;
    mutable filled : int;
    table_limit : int;  (* table size that holds [capacity] at 3/4 *)
    (* FIFO eviction order: a circular ring of (src, dst) pairs, at
       most [capacity] deep; grown geometrically on demand. *)
    mutable fifo_src : int array;
    mutable fifo_dst : int array;
    mutable fifo_head : int;
    mutable fifo_len : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    (* Bumped on every structural change (insert, remove, rebuild,
       invalidate) — NOT on hit/miss accounting. See
       {!Mac_table.t.gen}. *)
    mutable gen : int;
  }

  let table_cap capacity =
    let c = ref 16 in
    (* Keep the table under 3/4 full at capacity so probes stay short
       and no resize is ever needed. *)
    while 3 * !c < 4 * capacity do
      c := 2 * !c
    done;
    !c

  let create ~capacity () =
    if capacity < 1 then invalid_arg "Flow_cache.create: capacity < 1";
    (* Start minimal and grow toward [table_limit] as flows install —
       creating a switch must not pay for a worst-case table. 16 holds
       a dozen flows without a mid-burst rebuild. *)
    let cap = min 16 (table_cap capacity) in
    let fcap = min capacity 8 in
    {
      capacity;
      srcs = Array.make cap 0;
      dsts = Array.make cap 0;
      ports = Array.make cap 0;
      state = Bytes.make cap empty;
      live = 0;
      filled = 0;
      table_limit = table_cap capacity;
      fifo_src = Array.make fcap 0;
      fifo_dst = Array.make fcap 0;
      fifo_head = 0;
      fifo_len = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
      gen = 0;
    }

  let[@inline] probe t src dst =
    let mask = Array.length t.srcs - 1 in
    (* Same slot as hashing through {!hash_int}: the sign bit the
       inner [land max_int] would clear dies under [land mask]. *)
    let i = ref ((src * 0x9E3779B1 lxor (dst * 0x85EBCA6B)) land mask) in
    let free = ref (-1) in
    let result = ref (-1) in
    while !result < 0 do
      let s = Bytes.unsafe_get t.state !i in
      if s = empty then result := (if !free >= 0 then !free else !i)
      else if s = dead then begin
        if !free < 0 then free := !i;
        i := (!i + 1) land mask
      end
      else if Array.unsafe_get t.srcs !i = src && Array.unsafe_get t.dsts !i = dst
      then result := !i
      else i := (!i + 1) land mask
    done;
    !result

  (* Rehash into a table of [ncap] slots: grows toward [table_limit]
     as flows install, or compacts tombstones away in place. *)
  let rebuild t ncap =
    let osrcs = t.srcs and odsts = t.dsts and oports = t.ports in
    let ostate = t.state in
    t.gen <- t.gen + 1;
    t.srcs <- Array.make ncap 0;
    t.dsts <- Array.make ncap 0;
    t.ports <- Array.make ncap 0;
    t.state <- Bytes.make ncap empty;
    t.filled <- 0;
    t.live <- 0;
    for i = 0 to Array.length osrcs - 1 do
      if Bytes.get ostate i = used then begin
        let j = probe t osrcs.(i) odsts.(i) in
        t.srcs.(j) <- osrcs.(i);
        t.dsts.(j) <- odsts.(i);
        t.ports.(j) <- oports.(i);
        Bytes.set t.state j used;
        t.filled <- t.filled + 1;
        t.live <- t.live + 1
      end
    done

  let find_port_slow t src dst =
    let i = probe t src dst in
    if Bytes.get t.state i = used then begin
      t.hits <- t.hits + 1;
      t.ports.(i)
    end
    else begin
      t.misses <- t.misses + 1;
      -1
    end

  (* Bounded resident scan, mirror of {!Mac_table.hit_slot}: the hit
     slot, [-1] on a definite miss, [-2] when tombstones make absence
     ambiguous. Touches no hit/miss statistics. *)
  let[@inline] hit_slot t ~src ~dst =
    let srcs = t.srcs in
    let mask = Array.length srcs - 1 in
    let i = ref ((src * 0x9E3779B1 lxor (dst * 0x85EBCA6B)) land mask) in
    let r = ref min_int in
    while !r = min_int do
      let s = Bytes.unsafe_get t.state !i in
      if s = used then
        if
          Array.unsafe_get srcs !i = src && Array.unsafe_get t.dsts !i = dst
        then r := !i
        else i := (!i + 1) land mask
      else if s = empty then r := -1
      else r := -2
    done;
    !r

  (* Allocation-free lookup: [-1] = miss (ports are non-negative).
     Steady state is a short resident scan; tombstoned tables fall
     through to the general probe. *)
  let[@inline] find_port t ~src ~dst =
    match hit_slot t ~src ~dst with
    | -2 -> find_port_slow t src dst
    | -1 ->
        t.misses <- t.misses + 1;
        -1
    | i ->
        t.hits <- t.hits + 1;
        Array.unsafe_get t.ports i

  let find t ~src ~dst =
    match find_port t ~src ~dst with -1 -> None | p -> Some p

  let remove t src dst =
    let i = probe t src dst in
    if Bytes.get t.state i = used then begin
      Bytes.set t.state i dead;
      t.live <- t.live - 1;
      t.gen <- t.gen + 1
    end

  (* Double the FIFO ring (capped at [capacity]), unrolling to 0. *)
  let grow_fifo t =
    let cap = Array.length t.fifo_src in
    let ncap = min (2 * cap) t.capacity in
    let nsrc = Array.make ncap 0 and ndst = Array.make ncap 0 in
    for k = 0 to t.fifo_len - 1 do
      let j = t.fifo_head + k in
      let j = if j >= cap then j - cap else j in
      nsrc.(k) <- t.fifo_src.(j);
      ndst.(k) <- t.fifo_dst.(j)
    done;
    t.fifo_src <- nsrc;
    t.fifo_dst <- ndst;
    t.fifo_head <- 0

  let insert t ~src ~dst ~port =
    let i = probe t src dst in
    if Bytes.get t.state i <> used then begin
      if t.live >= t.capacity then begin
        (* FIFO eviction: the oldest installed flow goes. *)
        let h = t.fifo_head in
        remove t t.fifo_src.(h) t.fifo_dst.(h);
        t.fifo_head <-
          (if h + 1 >= Array.length t.fifo_src then 0 else h + 1);
        t.fifo_len <- t.fifo_len - 1;
        t.evictions <- t.evictions + 1
      end;
      (* The eviction may have freed this very slot chain; re-probe. *)
      let i = probe t src dst in
      if Bytes.get t.state i = empty then t.filled <- t.filled + 1;
      t.srcs.(i) <- src;
      t.dsts.(i) <- dst;
      t.ports.(i) <- port;
      Bytes.set t.state i used;
      t.live <- t.live + 1;
      t.gen <- t.gen + 1;
      if t.fifo_len >= Array.length t.fifo_src then grow_fifo t;
      let fcap = Array.length t.fifo_src in
      let tail = t.fifo_head + t.fifo_len in
      let tail = if tail >= fcap then tail - fcap else tail in
      t.fifo_src.(tail) <- src;
      t.fifo_dst.(tail) <- dst;
      t.fifo_len <- t.fifo_len + 1;
      (* Keep an empty slot reachable: grow toward [table_limit] while
         flows install, then compact tombstones in place (the old
         [9 * filled > 10 * cap] trigger could never fire — [filled]
         never exceeds [cap] — letting tombstones fill the table). *)
      let cap = Array.length t.srcs in
      if 4 * t.filled > 3 * cap then
        rebuild t (if cap < t.table_limit then 2 * cap else cap)
    end

  let invalidate t ~mac =
    (* A station moved: every cached flow naming it (either side) is
       wrong now. Compacting the FIFO keeps eviction order coherent. *)
    let removed = ref 0 in
    for i = 0 to Array.length t.srcs - 1 do
      if Bytes.get t.state i = used && (t.srcs.(i) = mac || t.dsts.(i) = mac)
      then begin
        Bytes.set t.state i dead;
        t.live <- t.live - 1;
        incr removed
      end
    done;
    if !removed > 0 then begin
      t.gen <- t.gen + 1;
      let n = t.fifo_len in
      let keep = ref 0 in
      let fcap = Array.length t.fifo_src in
      for k = 0 to n - 1 do
        let j = t.fifo_head + k in
        let j = if j >= fcap then j - fcap else j in
        let s = t.fifo_src.(j) and d = t.fifo_dst.(j) in
        if not (s = mac || d = mac) then begin
          let dst_k = !keep in
          t.fifo_src.(dst_k) <- s;
          t.fifo_dst.(dst_k) <- d;
          incr keep
        end
      done;
      t.fifo_head <- 0;
      t.fifo_len <- !keep
    end

  let size t = t.live
  let capacity t = t.capacity
  let hits t = t.hits
  let misses t = t.misses
  let evictions t = t.evictions

  let hit_ratio t =
    let total = t.hits + t.misses in
    if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
end

(* --- the switch --------------------------------------------------- *)

module Switch = struct
  (* Per-port rx queue: one interleaved int ring (src, dst, len, tag
     at stride 4 — a queued packet is four stores into one cache
     line), grown geometrically on demand up to [port_capacity]. The
     policy logic is inlined from {!Overload.Bounded_queue} (semantics
     and counters identical). *)
  type port = {
    id : int;
    mutable q_buf : int array;  (* length = 4 * slot count *)
    mutable q_head : int;  (* slot index *)
    mutable q_count : int;
    mutable p_in : int;
    mutable p_out : int;
    (* Per-source-port route memo (flow pinning): the last resolved
       (src, dst) -> destination port, plus the source's MAC slot, all
       valid only while both tables' [gen] counters still match the
       snapshot below. In steady state this turns forwarding into a
       handful of compares — no hash, no probe. [m_src = -1] = empty;
       [m_out] is the destination's port id (an int, not the record,
       so refilling the memo allocates nothing). *)
    mutable m_src : int;
    mutable m_dst : int;
    mutable m_out : int;
    mutable m_mi : int;  (* src's slot in the MAC table *)
    mutable m_mgen : int;
    mutable m_fgen : int;
  }

  let[@inline] q_slots p = Array.length p.q_buf lsr 2

  type delivery = { mutable enqueued : int; mutable marked : bool; mutable flood : bool }

  type t = {
    counters : Counter.set option;
    (* Hot counter ids, interned once at create (-1 when no set). *)
    id_drop : int;
    id_overload_drop : int;
    id_flood : int;
    id_flow_hit : int;
    id_flow_miss : int;
    id_no_route : int;
    id_ecn_mark : int;
    burn : int -> unit;
    has_burn : bool;  (* skip the indirect call when [burn] is free *)
    mac : Mac_table.t;
    flows : Flow_cache.t;
    port_capacity : int;
    port_policy : Overload.Bounded_queue.policy;
    mark_at : int;  (* capacity + 1 = never marks *)
    fair : Overload.Weighted_buckets.t option;
    mutable by_id : port option array;  (* dense port table *)
    mutable port_ids : int list;  (* ascending, rebuilt on add *)
    scratch : delivery;  (* reused result of [forward] *)
    mutable forwarded : int;
    mutable flooded : int;
    mutable dropped : int;
    mutable no_route : int;
  }

  let no_burn (_ : int) = ()

  let create ?counters ?(burn = no_burn) ?(mac_ttl = 1_000_000_000L)
      ?(flow_capacity = 64) ?(port_capacity = 64)
      ?(port_policy = Overload.Bounded_queue.Reject) ?mark_at ?fair () =
    if port_capacity < 1 then invalid_arg "Switch.create: port_capacity < 1";
    (match mark_at with
    | Some m when m < 1 -> invalid_arg "Switch.create: mark_at < 1"
    | Some _ | None -> ());
    let cid name =
      match counters with None -> -1 | Some c -> Counter.id c name
    in
    {
      counters;
      id_drop = cid "vnet.drop";
      id_overload_drop = cid Overload.drop_counter;
      id_flood = cid "vnet.flood";
      id_flow_hit = cid "vnet.flow_hit";
      id_flow_miss = cid "vnet.flow_miss";
      id_no_route = cid "vnet.no_route";
      id_ecn_mark = cid Overload.ecn_mark_counter;
      burn;
      has_burn = burn != no_burn;
      mac = Mac_table.create ~ttl:mac_ttl ();
      flows = Flow_cache.create ~capacity:flow_capacity ();
      port_capacity;
      port_policy;
      mark_at = Option.value mark_at ~default:(port_capacity + 1);
      fair;
      by_id = Array.make 16 None;
      port_ids = [];
      scratch = { enqueued = 0; marked = false; flood = false };
      forwarded = 0;
      flooded = 0;
      dropped = 0;
      no_route = 0;
    }

  let[@inline] note t id =
    match t.counters with None -> () | Some c -> Counter.incr_id c id

  let add_port t ~id =
    if id = broadcast then invalid_arg "Switch.add_port: 0 is broadcast";
    if id < 0 || id > 0xFF_FFFF then
      invalid_arg "Switch.add_port: id out of range";
    if id < Array.length t.by_id && t.by_id.(id) <> None then
      invalid_arg "Switch.add_port: duplicate id";
    if id >= Array.length t.by_id then begin
      let cap = ref (Array.length t.by_id) in
      while id >= !cap do
        cap := 2 * !cap
      done;
      let by_id = Array.make !cap None in
      Array.blit t.by_id 0 by_id 0 (Array.length t.by_id);
      t.by_id <- by_id
    end;
    let cap = min t.port_capacity 4 in
    let p =
      { id; q_buf = Array.make (4 * cap) 0; q_head = 0; q_count = 0;
        p_in = 0; p_out = 0; m_src = -1; m_dst = -1; m_out = 0;
        m_mi = 0; m_mgen = -1; m_fgen = -1 }
    in
    t.by_id.(id) <- Some p;
    let rec ins (l : int list) =
      match l with
      | [] -> [ id ]
      | x :: rest -> if id < x then id :: l else x :: ins rest
    in
    t.port_ids <- ins t.port_ids;
    id

  let port_fail id = invalid_arg (Printf.sprintf "Switch: unknown port %d" id)

  let[@inline] port_exn t id =
    if id >= 0 && id < Array.length t.by_id then
      match Array.unsafe_get t.by_id id with
      | Some p -> p
      | None -> port_fail id
    else port_fail id

  let ports t = t.port_ids
  let q_marked t p = p.q_count >= t.mark_at

  let[@inline] q_store p ~at ~src ~dst ~len ~tag =
    let buf = p.q_buf in
    let slots = Array.length buf lsr 2 in
    let at = if at >= slots then at - slots else at in
    let b = at lsl 2 in
    Array.unsafe_set buf b src;
    Array.unsafe_set buf (b + 1) dst;
    Array.unsafe_set buf (b + 2) len;
    Array.unsafe_set buf (b + 3) tag

  (* One destination-port enqueue under the port policy. Mirrors
     [Bounded_queue.push]: Reject refuses the fresh packet,
     Drop_oldest displaces the head (the fresh packet gets in; the
     displaced head is the loss), Block_with_deadline degrades to a
     refusal here — the switch has nobody to park. *)
  (* Double the ring (capped at [port_capacity]), unrolling to 0. *)
  let grow_ring t p =
    let cap = q_slots p in
    let ncap = min (2 * cap) t.port_capacity in
    let nbuf = Array.make (4 * ncap) 0 in
    for k = 0 to p.q_count - 1 do
      let j = p.q_head + k in
      let j = if j >= cap then j - cap else j in
      Array.blit p.q_buf (4 * j) nbuf (4 * k) 4
    done;
    p.q_buf <- nbuf;
    p.q_head <- 0

  let[@inline] enqueue t port ~src ~dst ~len ~tag =
    if t.has_burn then t.burn enqueue_cost;
    if port.q_count < t.port_capacity then begin
      if port.q_count >= q_slots port then grow_ring t port;
      q_store port ~at:(port.q_head + port.q_count) ~src ~dst ~len ~tag;
      port.q_count <- port.q_count + 1;
      port.p_out <- port.p_out + 1;
      t.forwarded <- t.forwarded + 1;
      true
    end
    else
      match t.port_policy with
      | Overload.Bounded_queue.Drop_oldest ->
          port.q_head <-
            (if port.q_head + 1 >= q_slots port then 0 else port.q_head + 1);
          q_store port ~at:(port.q_head + port.q_count - 1) ~src ~dst ~len ~tag;
          port.p_out <- port.p_out + 1;
          t.forwarded <- t.forwarded + 1;
          t.dropped <- t.dropped + 1;
          note t t.id_drop;
          note t t.id_overload_drop;
          true
      | Overload.Bounded_queue.Reject
      | Overload.Bounded_queue.Block_with_deadline _ ->
          t.dropped <- t.dropped + 1;
          note t t.id_drop;
          note t t.id_overload_drop;
          false

  (* One forwarding decision: learn the source, admit (fair-share,
     keyed on the in-port), resolve via flow cache then MAC table,
     flood on broadcast/unknown, enqueue on the destination port(s).
     The result carries the destination's ECN mark so the caller can
     bounce it to the sender.

     The returned [delivery] record is the switch's reusable scratch —
     read it before the next [forward] on this switch. *)
  let forward_general t ~now ~in_port ~src ~dst ~len ~tag =
    let src_port = port_exn t in_port in
    src_port.p_in <- src_port.p_in + 1;
    Mac_table.learn t.mac ~now ~mac:src ~port:in_port;
    let r = t.scratch in
    r.enqueued <- 0;
    r.marked <- false;
    r.flood <- false;
    let admitted =
      match t.fair with
      | None -> true
      | Some fair -> Overload.Weighted_buckets.admit fair ~key:in_port ~now
    in
    if not admitted then begin
      (* Shed at the gate, before any lookup work (livelock defense). *)
      if t.has_burn then t.burn enqueue_cost
    end
    else if dst = broadcast then begin
      (* Flood: every port but the source. *)
      if t.has_burn then t.burn flow_miss_cost;
      note t t.id_flood;
      t.flooded <- t.flooded + 1;
      r.flood <- true;
      let by_id = t.by_id in
      for id = 1 to Array.length by_id - 1 do
        if id <> in_port then
          match by_id.(id) with
          | None -> ()
          | Some out ->
              if enqueue t out ~src ~dst ~len ~tag then
                r.enqueued <- r.enqueued + 1;
              if q_marked t out then r.marked <- true
      done
    end
    else begin
      let out_id =
        match Flow_cache.find_port t.flows ~src ~dst with
        | -1 -> (
            if t.has_burn then t.burn flow_miss_cost;
            note t t.id_flow_miss;
            match Mac_table.lookup_port t.mac ~now dst with
            | -1 -> -1
            | port ->
                Flow_cache.insert t.flows ~src ~dst ~port;
                port)
        | port ->
            if t.has_burn then t.burn flow_hit_cost;
            note t t.id_flow_hit;
            port
      in
      if out_id = -1 || out_id = in_port then begin
        (* Unknown unicast destination (the guest never attached) or a
           hairpin to self (the bridge does not reflect): count and
           drop. *)
        t.no_route <- t.no_route + 1;
        note t t.id_no_route
      end
      else begin
        let out = port_exn t out_id in
        if enqueue t out ~src ~dst ~len ~tag then r.enqueued <- 1;
        let marked = q_marked t out in
        r.marked <- marked;
        if marked then note t t.id_ecn_mark
      end
    end;
    r

  (* The steady-state fast path: a resident unicast flow sitting in
     both hash home slots, room in the destination ring, no fair gate.
     All-or-nothing — no counter, timestamp or queue effect is
     committed until every condition has held, so falling back to
     [forward_general] never double-counts. The general path remains
     the semantic reference; this is the same decision sequence with
     the misses compiled out. *)
  (* Commit one fast-path delivery: exactly the side effects the
     general path would have produced for a resident unicast flow-hit
     with room in the destination ring. [mi] is the source's MAC slot
     (its [seen] refresh is the [learn]). *)
  let[@inline] fast_commit t sp (mt : Mac_table.t) mi (fc : Flow_cache.t) out
      ~now ~src ~dst ~len ~tag =
    sp.p_in <- sp.p_in + 1;
    Array.unsafe_set mt.Mac_table.seen mi (Int64.to_int now);
    fc.Flow_cache.hits <- fc.Flow_cache.hits + 1;
    if t.has_burn then begin
      t.burn flow_hit_cost;
      t.burn enqueue_cost
    end;
    note t t.id_flow_hit;
    q_store out ~at:(out.q_head + out.q_count) ~src ~dst ~len ~tag;
    out.q_count <- out.q_count + 1;
    out.p_out <- out.p_out + 1;
    t.forwarded <- t.forwarded + 1;
    let r = t.scratch in
    r.enqueued <- 1;
    r.flood <- false;
    let marked = out.q_count >= t.mark_at in
    r.marked <- marked;
    if marked then note t t.id_ecn_mark;
    r

  (* The slower half of the fast path: scan both tables, and on
     success refill [sp]'s route memo before committing. All-or-
     nothing — no counter, timestamp or queue effect is committed
     until every condition has held, so falling back to
     [forward_general] never double-counts. *)
  let fast_scan t sp ~now ~in_port ~src ~dst ~len ~tag =
    let by_id = t.by_id in
    let mt = t.mac in
    let mi = Mac_table.hit_slot mt src in
    if mi >= 0 && Array.unsafe_get mt.Mac_table.ports mi = in_port then begin
      let fc = t.flows in
      let fi = Flow_cache.hit_slot fc ~src ~dst in
      if fi >= 0 then begin
        let out_id = Array.unsafe_get fc.Flow_cache.ports fi in
        if
          out_id <> in_port
          && out_id > 0
          && out_id < Array.length by_id
        then
          match Array.unsafe_get by_id out_id with
          | Some out when out.q_count lsl 2 < Array.length out.q_buf ->
              sp.m_src <- src;
              sp.m_dst <- dst;
              sp.m_out <- out_id;
              sp.m_mi <- mi;
              sp.m_mgen <- mt.Mac_table.gen;
              sp.m_fgen <- fc.Flow_cache.gen;
              fast_commit t sp mt mi fc out ~now ~src ~dst ~len ~tag
          | Some _ | None ->
              forward_general t ~now ~in_port ~src ~dst ~len ~tag
        else forward_general t ~now ~in_port ~src ~dst ~len ~tag
      end
      else forward_general t ~now ~in_port ~src ~dst ~len ~tag
    end
    else forward_general t ~now ~in_port ~src ~dst ~len ~tag

  (* The steady-state fast path: a resident unicast flow, room in the
     destination ring, no fair gate. The per-port route memo short-
     circuits both table scans while the tables' [gen] counters are
     unchanged; any structural change anywhere invalidates every memo
     at once. The general path remains the semantic reference; this is
     the same decision sequence with the misses compiled out. *)
  let forward_to t ~now ~in_port ~src ~dst ~len ~tag =
    let by_id = t.by_id in
    if
      (match t.fair with None -> true | Some _ -> false)
      && dst <> broadcast
      && in_port > 0
      && in_port < Array.length by_id
    then
      match Array.unsafe_get by_id in_port with
      | None -> forward_general t ~now ~in_port ~src ~dst ~len ~tag
      | Some sp -> (
          if
            sp.m_src = src
            && sp.m_dst = dst
            && sp.m_mgen = t.mac.Mac_table.gen
            && sp.m_fgen = t.flows.Flow_cache.gen
          then
            (* [m_out] was in bounds at fill time and [by_id] only
               grows (indices preserved), so the unsafe read is safe;
               slot 0 (broadcast) is always [None]. *)
            match Array.unsafe_get by_id sp.m_out with
            | Some out when out.q_count lsl 2 < Array.length out.q_buf ->
                fast_commit t sp t.mac sp.m_mi t.flows out ~now ~src ~dst
                  ~len ~tag
            | Some _ | None ->
                forward_general t ~now ~in_port ~src ~dst ~len ~tag
          else fast_scan t sp ~now ~in_port ~src ~dst ~len ~tag)
    else forward_general t ~now ~in_port ~src ~dst ~len ~tag

  let forward t ~now ~in_port (p : pkt) =
    forward_to t ~now ~in_port ~src:p.src ~dst:p.dst ~len:p.len ~tag:p.tag

  let pop t ~port =
    let p = port_exn t port in
    if p.q_count = 0 then None
    else begin
      let b = p.q_head lsl 2 in
      let buf = p.q_buf in
      let pkt =
        { src = buf.(b); dst = buf.(b + 1); len = buf.(b + 2); tag = buf.(b + 3) }
      in
      p.q_head <- (if p.q_head + 1 >= q_slots p then 0 else p.q_head + 1);
      p.q_count <- p.q_count - 1;
      Some pkt
    end

  let discard t ~port =
    let p = port_exn t port in
    if p.q_count = 0 then false
    else begin
      p.q_head <- (if p.q_head + 1 >= q_slots p then 0 else p.q_head + 1);
      p.q_count <- p.q_count - 1;
      true
    end

  let pending t ~port = (port_exn t port).q_count

  let port_marked t ~port = q_marked t (port_exn t port)

  let rx_of t ~port = (port_exn t port).p_in
  let tx_of t ~port = (port_exn t port).p_out
  let mac_table t = t.mac
  let flow_cache t = t.flows
  let forwarded t = t.forwarded
  let flooded t = t.flooded
  let dropped t = t.dropped
  let no_route t = t.no_route
end
