module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload

(* Packet addressing shares the machine-wide demux convention
   (tag = dst·10⁶ + src·10⁴ + seq, see {!Vmk_guest.Sys}): the switch
   never parses tags itself — callers hand it a decoded packet. *)
type pkt = { src : int; dst : int; len : int; tag : int }

let broadcast = 0

(* Cycle prices of the forwarding decision, charged through the
   caller-supplied [burn] so each stack bills the right account (Dom0
   for the bridge, the net server for the broker). A flow-cache hit
   skips the MAC-table walk — the gap the E17 hit-ratio sweep
   measures. *)
let flow_hit_cost = 40
let flow_miss_cost = 180
let enqueue_cost = 25

(* --- learning MAC table with aging ------------------------------- *)

module Mac_table = struct
  type entry = { mutable port : int; mutable last_seen : int64 }

  type t = {
    ttl : int64;
    entries : (int, entry) Hashtbl.t;
    mutable learns : int;
    mutable moves : int;
    mutable expiries : int;
  }

  let create ?(ttl = 1_000_000_000L) () =
    if Int64.compare ttl 1L < 0 then invalid_arg "Mac_table.create: ttl < 1";
    { ttl; entries = Hashtbl.create 16; learns = 0; moves = 0; expiries = 0 }

  let learn t ~now ~mac ~port =
    match Hashtbl.find_opt t.entries mac with
    | Some e ->
        if e.port <> port then begin
          (* Station moved (or the guest was replugged): rebind. *)
          e.port <- port;
          t.moves <- t.moves + 1
        end;
        e.last_seen <- now
    | None ->
        Hashtbl.add t.entries mac { port; last_seen = now };
        t.learns <- t.learns + 1

  let lookup t ~now mac =
    match Hashtbl.find_opt t.entries mac with
    | Some e ->
        if Int64.compare (Int64.sub now e.last_seen) t.ttl > 0 then begin
          (* Stale entry: age it out — the packet floods like an
             unknown destination. *)
          Hashtbl.remove t.entries mac;
          t.expiries <- t.expiries + 1;
          None
        end
        else Some e.port
    | None -> None

  let size t = Hashtbl.length t.entries
  let learns t = t.learns
  let moves t = t.moves
  let expiries t = t.expiries
end

(* --- bounded flow cache with hit/miss accounting ----------------- *)

module Flow_cache = struct
  type t = {
    capacity : int;
    entries : (int * int, int) Hashtbl.t;  (** (src, dst) -> out port *)
    order : (int * int) Queue.t;  (** FIFO eviction order. *)
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create ~capacity () =
    if capacity < 1 then invalid_arg "Flow_cache.create: capacity < 1";
    {
      capacity;
      entries = Hashtbl.create 32;
      order = Queue.create ();
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let find t ~src ~dst =
    match Hashtbl.find_opt t.entries (src, dst) with
    | Some port ->
        t.hits <- t.hits + 1;
        Some port
    | None ->
        t.misses <- t.misses + 1;
        None

  let insert t ~src ~dst ~port =
    if not (Hashtbl.mem t.entries (src, dst)) then begin
      if Hashtbl.length t.entries >= t.capacity then begin
        let victim = Queue.take t.order in
        Hashtbl.remove t.entries victim;
        t.evictions <- t.evictions + 1
      end;
      Hashtbl.add t.entries (src, dst) port;
      Queue.add (src, dst) t.order
    end

  let invalidate t ~mac =
    (* A station moved: every cached flow naming it (either side) is
       wrong now. Rebuilding the FIFO keeps eviction order coherent. *)
    let stale = Hashtbl.fold
        (fun (s, d) _ acc -> if s = mac || d = mac then (s, d) :: acc else acc)
        t.entries []
    in
    List.iter (Hashtbl.remove t.entries) stale;
    if stale <> [] then begin
      let keep = Queue.create () in
      Queue.iter
        (fun k -> if Hashtbl.mem t.entries k then Queue.add k keep)
        t.order;
      Queue.clear t.order;
      Queue.transfer keep t.order
    end

  let size t = Hashtbl.length t.entries
  let capacity t = t.capacity
  let hits t = t.hits
  let misses t = t.misses
  let evictions t = t.evictions

  let hit_ratio t =
    let total = t.hits + t.misses in
    if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total
end

(* --- the switch --------------------------------------------------- *)

module Switch = struct
  type port = {
    id : int;
    rx : pkt Overload.Bounded_queue.t;
    mutable p_in : int;
    mutable p_out : int;
  }

  type t = {
    counters : Counter.set option;
    burn : int -> unit;
    mac : Mac_table.t;
    flows : Flow_cache.t;
    port_capacity : int;
    port_policy : Overload.Bounded_queue.policy;
    mark_at : int option;
    fair : Overload.Weighted_buckets.t option;
    ports : (int, port) Hashtbl.t;
    mutable forwarded : int;
    mutable flooded : int;
    mutable dropped : int;
    mutable no_route : int;
  }

  type delivery = { enqueued : int; marked : bool; flood : bool }

  let create ?counters ?(burn = fun _ -> ()) ?(mac_ttl = 1_000_000_000L)
      ?(flow_capacity = 64) ?(port_capacity = 64)
      ?(port_policy = Overload.Bounded_queue.Reject) ?mark_at ?fair () =
    {
      counters;
      burn;
      mac = Mac_table.create ~ttl:mac_ttl ();
      flows = Flow_cache.create ~capacity:flow_capacity ();
      port_capacity;
      port_policy;
      mark_at;
      fair;
      ports = Hashtbl.create 8;
      forwarded = 0;
      flooded = 0;
      dropped = 0;
      no_route = 0;
    }

  let note t name =
    match t.counters with None -> () | Some c -> Counter.incr c name

  let add_port t ~id =
    if Hashtbl.mem t.ports id then invalid_arg "Switch.add_port: duplicate id";
    if id = broadcast then invalid_arg "Switch.add_port: 0 is broadcast";
    let p =
      {
        id;
        rx =
          Overload.Bounded_queue.create ~policy:t.port_policy
            ?mark_at:t.mark_at ~capacity:t.port_capacity ();
        p_in = 0;
        p_out = 0;
      }
    in
    Hashtbl.add t.ports id p;
    id

  let port_exn t id =
    match Hashtbl.find_opt t.ports id with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Switch: unknown port %d" id)

  let ports t =
    List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.ports [])

  let enqueue t ~now port pkt =
    t.burn enqueue_cost;
    match Overload.Bounded_queue.push port.rx ~now pkt with
    | Overload.Bounded_queue.Accepted ->
        port.p_out <- port.p_out + 1;
        t.forwarded <- t.forwarded + 1;
        true
    | Overload.Bounded_queue.Displaced _ ->
        (* The fresh packet got in; the displaced head is the loss. *)
        port.p_out <- port.p_out + 1;
        t.forwarded <- t.forwarded + 1;
        t.dropped <- t.dropped + 1;
        note t "vnet.drop";
        note t Overload.drop_counter;
        true
    | Overload.Bounded_queue.Rejected | Overload.Bounded_queue.Retry_until _ ->
        t.dropped <- t.dropped + 1;
        note t "vnet.drop";
        note t Overload.drop_counter;
        false

  (* One forwarding decision: learn the source, admit (fair-share,
     keyed on the in-port), resolve via flow cache then MAC table,
     flood on broadcast/unknown, enqueue on the destination port(s).
     The result carries the destination's ECN mark so the caller can
     bounce it to the sender. *)
  let forward t ~now ~in_port (p : pkt) =
    let src_port = port_exn t in_port in
    src_port.p_in <- src_port.p_in + 1;
    Mac_table.learn t.mac ~now ~mac:p.src ~port:in_port;
    let admitted =
      match t.fair with
      | None -> true
      | Some fair -> Overload.Weighted_buckets.admit fair ~key:in_port ~now
    in
    if not admitted then begin
      (* Shed at the gate, before any lookup work (livelock defense). *)
      t.burn enqueue_cost;
      { enqueued = 0; marked = false; flood = false }
    end
    else if p.dst = broadcast then begin
      (* Flood: every port but the source. *)
      t.burn flow_miss_cost;
      note t "vnet.flood";
      t.flooded <- t.flooded + 1;
      let n = ref 0 and marked = ref false in
      List.iter
        (fun id ->
          if id <> in_port then begin
            let dst = port_exn t id in
            if enqueue t ~now dst p then incr n;
            if Overload.Bounded_queue.marked dst.rx then marked := true
          end)
        (ports t);
      { enqueued = !n; marked = !marked; flood = true }
    end
    else begin
      let out =
        match Flow_cache.find t.flows ~src:p.src ~dst:p.dst with
        | Some port ->
            t.burn flow_hit_cost;
            note t "vnet.flow_hit";
            Some port
        | None -> (
            t.burn flow_miss_cost;
            note t "vnet.flow_miss";
            match Mac_table.lookup t.mac ~now p.dst with
            | Some port ->
                Flow_cache.insert t.flows ~src:p.src ~dst:p.dst ~port;
                Some port
            | None -> None)
      in
      match out with
      | None ->
          (* Unknown unicast destination: a real bridge floods; here
             destinations are ports, so an unknown one means the guest
             never attached — count and drop. *)
          t.no_route <- t.no_route + 1;
          note t "vnet.no_route";
          { enqueued = 0; marked = false; flood = false }
      | Some out_id when out_id = in_port ->
          (* Hairpin to self: the bridge does not reflect. *)
          t.no_route <- t.no_route + 1;
          note t "vnet.no_route";
          { enqueued = 0; marked = false; flood = false }
      | Some out_id ->
          let dst = port_exn t out_id in
          let ok = enqueue t ~now dst p in
          let marked = Overload.Bounded_queue.marked dst.rx in
          if marked then note t Overload.ecn_mark_counter;
          { enqueued = (if ok then 1 else 0); marked; flood = false }
    end

  let pop t ~port = Overload.Bounded_queue.pop (port_exn t port).rx
  let pending t ~port = Overload.Bounded_queue.length (port_exn t port).rx
  let port_marked t ~port = Overload.Bounded_queue.marked (port_exn t port).rx
  let rx_of t ~port = (port_exn t port).p_in
  let tx_of t ~port = (port_exn t port).p_out
  let mac_table t = t.mac
  let flow_cache t = t.flows
  let forwarded t = t.forwarded
  let flooded t = t.flooded
  let dropped t = t.dropped
  let no_route t = t.no_route
end
