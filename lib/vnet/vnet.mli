(** Deterministic inter-guest networking fabric (E17).

    A learning virtual switch — MAC table with aging, a bounded flow
    cache with hit/miss cycle accounting, per-port bounded rx queues
    reusing the {!Vmk_overload} policies, broadcast flooding — shared
    by both stack realizations of inter-guest traffic:

    {ul
    {- the Xen-style Dom0 software bridge ({!Vmk_vmm.Bridge}), where
       every packet crosses Dom0 twice
       (netfront→netback→bridge→netback→netfront); and}
    {- the L4-style path ({!Vmk_ukernel.Net_server} broker +
       {!Vmk_guest.Port_l4} channels), where the net server brokers
       connection setup against this switch and the data path then runs
       as direct guest-to-guest IPC.}}

    The switch itself is stack-agnostic: cycle costs are charged
    through a caller-supplied [burn], so the bridge bills Dom0 and the
    broker bills the net server. All state is deterministic (no wall
    clock, no unseeded randomness); counters itemize machine-wide under
    the ["vnet.*"] namespace. *)

type pkt = { src : int; dst : int; len : int; tag : int }
(** [src]/[dst] are vnet port ids (decoded from the machine-wide tag
    convention by the caller). *)

val broadcast : int
(** Destination 0 floods to every port except the source. *)

val flow_hit_cost : int
(** Cycles for a forwarding decision resolved by the flow cache. *)

val flow_miss_cost : int
(** Cycles for a cold decision: flow-cache miss + MAC-table walk (also
    the per-packet price of a flood). *)

val enqueue_cost : int
(** Cycles to enqueue onto one destination port. *)

(** Learning MAC table: stations are bound to ports as their traffic is
    seen; entries idle longer than [ttl] age out and the next lookup
    misses (the packet then floods or drops like an unknown). *)
module Mac_table : sig
  type t

  val create : ?ttl:int64 -> unit -> t
  (** Default ttl 10⁹ cycles. @raise Invalid_argument if [ttl < 1]. *)

  val learn : t -> now:int64 -> mac:int -> port:int -> unit
  (** Bind (or refresh) [mac] to [port]; a changed port is a station
      move and rebinds. Allocation-free. *)

  val lookup : t -> now:int64 -> int -> int option
  (** Resolve a MAC; expired entries are removed and miss. *)

  val lookup_port : t -> now:int64 -> int -> int
  (** Allocation-free {!lookup}: [-1] = miss (ports are non-negative). *)

  val size : t -> int
  val learns : t -> int
  val moves : t -> int
  val expiries : t -> int
end

(** Bounded (src, dst) → port cache in front of the MAC table: a hit
    costs {!flow_hit_cost}, a miss pays {!flow_miss_cost} and installs
    the resolution, evicting the oldest entry when full (FIFO). The
    hit/miss split is the E17 flow-cache sweep's instrument. *)
module Flow_cache : sig
  type t

  val create : capacity:int -> unit -> t
  (** @raise Invalid_argument if [capacity < 1]. *)

  val find : t -> src:int -> dst:int -> int option

  val find_port : t -> src:int -> dst:int -> int
  (** Allocation-free {!find}: [-1] = miss (ports are non-negative). *)

  val insert : t -> src:int -> dst:int -> port:int -> unit

  val invalidate : t -> mac:int -> unit
  (** Drop every cached flow naming [mac] (station moved). *)

  val size : t -> int
  val capacity : t -> int
  val hits : t -> int
  val misses : t -> int
  val evictions : t -> int
  val hit_ratio : t -> float
end

(** The virtual switch: ports with bounded rx queues, forwarding via
    flow cache → MAC table → flood. *)
module Switch : sig
  type t

  type delivery = {
    mutable enqueued : int;  (** Ports the packet was queued on. *)
    mutable marked : bool;
        (** A destination queue is past its ECN watermark — bounce this
            to the sender so it backs off before drops start. *)
    mutable flood : bool;
  }
  (** The record returned by {!forward} is a per-switch scratch, reused
      on every call — read it before the next forward (E21: the steady
      state allocates nothing). *)

  val create :
    ?counters:Vmk_trace.Counter.set ->
    ?burn:(int -> unit) ->
    ?mac_ttl:int64 ->
    ?flow_capacity:int ->
    ?port_capacity:int ->
    ?port_policy:Vmk_overload.Overload.Bounded_queue.policy ->
    ?mark_at:int ->
    ?fair:Vmk_overload.Overload.Weighted_buckets.t ->
    unit ->
    t
  (** [burn] charges forwarding cycles to the hosting component
      (default: free — unit tests). [fair] installs per-source-port
      weighted admission at the gate, before any lookup work.
      [mark_at] arms the ECN watermark on every port queue. Port
      queues default to capacity 64, {!Vmk_overload.Overload.Bounded_queue.Reject}. *)

  val add_port : t -> id:int -> int
  (** Register a port (a guest's attachment point). Returns [id].
      @raise Invalid_argument on duplicates or the broadcast id 0. *)

  val ports : t -> int list
  (** Registered port ids, ascending. *)

  val forward : t -> now:int64 -> in_port:int -> pkt -> delivery
  (** Forward one packet arriving on [in_port]: learn the source,
      fair-admit, resolve, enqueue. Drops (full destination queue,
      unknown destination, hairpin) are counted under ["vnet.*"] and
      [overload.drop].
      @raise Invalid_argument on an unknown [in_port]. *)

  val forward_to :
    t ->
    now:int64 ->
    in_port:int ->
    src:int ->
    dst:int ->
    len:int ->
    tag:int ->
    delivery
  (** {!forward} without materializing a [pkt] record — the
      allocation-free hot-path entry point. *)

  val pop : t -> port:int -> pkt option
  (** Dequeue the next packet waiting on a port (the port's backend
      drains this into its guest). *)

  val discard : t -> port:int -> bool
  (** Drop the next packet waiting on a port without materializing it —
      the allocation-free form of [ignore (pop t ~port)]. *)

  val pending : t -> port:int -> int
  val port_marked : t -> port:int -> bool
  val rx_of : t -> port:int -> int
  (** Packets this port sent {e into} the switch. *)

  val tx_of : t -> port:int -> int
  (** Packets queued for delivery {e out of} this port. *)

  val mac_table : t -> Mac_table.t
  val flow_cache : t -> Flow_cache.t
  val forwarded : t -> int
  val flooded : t -> int
  val dropped : t -> int
  val no_route : t -> int
end
