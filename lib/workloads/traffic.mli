(** Network traffic generators.

    Drive the simulated NIC from engine events — the "external load" side
    of the I/O experiments. Generators gate on a caller-supplied readiness
    predicate so measurement streams start only once the driver stack is
    up (drops during boot would pollute the CPU-share numbers E3 cares
    about). *)

type t
(** A running traffic source. *)

val constant_rate :
  Vmk_hw.Machine.t ->
  gate:(unit -> bool) ->
  period:int64 ->
  len:int ->
  count:int ->
  ?key:int ->
  ?on_inject:(tag:int -> at:int64 -> unit) ->
  unit ->
  t
(** Inject one [len]-byte packet every [period] cycles while [gate ()]
    holds (ticks failing the gate are skipped, not counted), until
    [count] packets were injected. [key] is the demux key packets are
    tagged for (default 1: tag = key·10⁶ + sequence). [on_inject] is
    called with each packet's tag and injection time — the latency
    reference point for E15's per-packet delay measurements. *)

val poisson_rate :
  Vmk_hw.Machine.t ->
  gate:(unit -> bool) ->
  mean_period:float ->
  len:int ->
  count:int ->
  ?key:int ->
  unit ->
  t
(** Exponentially distributed inter-arrival times with the given mean,
    drawn from the machine's seeded RNG. *)

val replay :
  Vmk_hw.Machine.t ->
  Scenario.t ->
  len:int ->
  ?pkt_gap:int64 ->
  ?on_inject:(tag:int -> at:int64 -> unit) ->
  unit ->
  t
(** Replay a materialised {!Scenario} schedule against the NIC,
    {e open-loop}: every flow starts at its scheduled absolute cycle and
    streams its packets [pkt_gap] cycles apart (default 200), with no
    gate and no backoff — congestion in the system under test never
    slows the source. Packets are demux-keyed by the flow's destination
    guest. [done_] flips once all [total_packets] went in. *)

val injected : t -> int
val done_ : t -> bool
