(* Datacenter-scale scenario generator (E22).

   Produces a deterministic, fully materialised *flow schedule* from a
   seeded Rng: Zipf-distributed (bounded power-law) flow sizes, Poisson
   arrivals while a tenant is ON, on/off tenant processes with
   exponential dwell times, and a piecewise-constant diurnal rate ramp.

   The schedule is open-loop by construction: arrival times are fixed at
   generation time and never react to how the system under test copes —
   injectors replay the schedule as-is, so congestion shows up as tail
   latency and loss, not as a politely backing-off source.

   Storage is struct-of-arrays over native ints (one packed meta word
   per flow), so a million-flow day is ~16 MB and generation is a single
   pass per tenant plus one global sort. Each tenant draws from its own
   [Rng.split] sub-stream in a fixed order, which keeps the schedule
   bit-for-bit reproducible from the seed alone. *)

module Rng = Vmk_sim.Rng

type config = {
  tenants : int;
  guests : int; (* fabric endpoints; tenant t sources from guest (t mod guests)+1 *)
  mean_flow_gap : float; (* mean cycles between flow starts per tenant, ON, mult 1.0 *)
  zipf_alpha : float; (* flow-size tail exponent *)
  size_min : int; (* packets per flow, bounds of the power law *)
  size_max : int;
  on_mean : float; (* mean ON dwell, cycles *)
  off_mean : float; (* mean OFF dwell, cycles *)
  ramp : (float * float) array; (* (start fraction of horizon, rate multiplier) *)
  horizon : int64; (* cycles in the simulated day *)
}

(* A flat day: one segment, multiplier 1. *)
let flat = [| (0.0, 1.0) |]

(* A stylised datacenter day: overnight trough, morning climb, midday
   peak, afternoon shoulder, evening peak, wind-down. *)
let diurnal =
  [|
    (0.0, 0.25);
    (0.15, 0.55);
    (0.30, 1.0);
    (0.50, 0.7);
    (0.65, 1.0);
    (0.85, 0.35);
  |]

let validate cfg =
  if cfg.tenants < 1 || cfg.tenants > 4095 then
    invalid_arg "Scenario: tenants out of range";
  if cfg.guests < 1 || cfg.guests > 255 then
    invalid_arg "Scenario: guests out of range";
  if cfg.mean_flow_gap <= 0.0 then invalid_arg "Scenario: mean_flow_gap <= 0";
  if cfg.size_min < 1 || cfg.size_max < cfg.size_min then
    invalid_arg "Scenario: bad size bounds";
  if cfg.size_max >= 1 lsl 20 then invalid_arg "Scenario: size_max too large";
  if cfg.on_mean <= 0.0 || cfg.off_mean <= 0.0 then
    invalid_arg "Scenario: dwell means must be positive";
  if Int64.compare cfg.horizon 1L < 0 then invalid_arg "Scenario: horizon < 1";
  if Array.length cfg.ramp = 0 then invalid_arg "Scenario: empty ramp";
  if fst cfg.ramp.(0) <> 0.0 then invalid_arg "Scenario: ramp must start at 0";
  Array.iteri
    (fun i (start, mult) ->
      if start < 0.0 || start >= 1.0 then
        invalid_arg "Scenario: ramp start out of [0,1)";
      if i > 0 && start <= fst cfg.ramp.(i - 1) then
        invalid_arg "Scenario: ramp starts must increase";
      if mult <= 0.0 then invalid_arg "Scenario: ramp multiplier <= 0")
    cfg.ramp

let ramp_mult cfg ~frac =
  (* Last segment whose start is <= frac; segments are sorted. *)
  let m = ref (snd cfg.ramp.(0)) in
  Array.iter (fun (start, mult) -> if frac >= start then m := mult) cfg.ramp;
  !m

(* Bounded power-law ("Zipf") sampler by inversion of the truncated
   Pareto CDF on [lo, hi], discretised by flooring. Density ~ x^-alpha. *)
let zipf rng ~alpha ~lo ~hi =
  if lo < 1 || hi < lo then invalid_arg "Scenario.zipf: bad bounds";
  if lo = hi then lo
  else begin
    let u = Rng.float rng 1.0 in
    let flo = float_of_int lo and fhi = float_of_int (hi + 1) in
    let x =
      if Float.abs (alpha -. 1.0) < 1e-9 then flo *. exp (u *. log (fhi /. flo))
      else begin
        let a1 = 1.0 -. alpha in
        let l = flo ** a1 and h = fhi ** a1 in
        (l +. (u *. (h -. l))) ** (1.0 /. a1)
      end
    in
    let k = int_of_float x in
    if k < lo then lo else if k > hi then hi else k
  end

(* Packed meta word: size (20 bits) | tenant (12) | src (8) | dst (8). *)
let pack ~size ~tenant ~src ~dst =
  size lor (tenant lsl 20) lor (src lsl 32) lor (dst lsl 40)

type t = {
  cfg : config;
  at : int array; (* arrival cycle of flow i, sorted ascending *)
  meta : int array;
  total_packets : int;
  on_time : float array; (* per-tenant cumulative ON dwell, cycles *)
  fingerprint : int;
}

(* Growable int buffer; the schedule size is not known up front. *)
module Buf = struct
  type t = { mutable a : int array; mutable len : int }

  let create () = { a = Array.make 1024 0; len = 0 }

  let push b v =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- v;
    b.len <- b.len + 1
end

let generate ?(seed = 0xD47AC570L) ?tenant_rate cfg =
  validate cfg;
  let master = Rng.create ~seed () in
  let hf = Int64.to_float cfg.horizon in
  let bat = Buf.create () and bmeta = Buf.create () in
  let on_time = Array.make cfg.tenants 0.0 in
  for tn = 0 to cfg.tenants - 1 do
    let r = Rng.split master in
    let rate = match tenant_rate with None -> 1.0 | Some f -> f tn in
    if rate <= 0.0 then invalid_arg "Scenario.generate: tenant rate <= 0";
    let gap_base = cfg.mean_flow_gap /. rate in
    let src = (tn mod cfg.guests) + 1 in
    let now = ref 0.0 in
    while !now < hf do
      let on_end = Float.min hf (!now +. Rng.exponential r ~mean:cfg.on_mean) in
      let t = ref !now and running = ref true in
      while !running do
        (* Scale the next inter-arrival gap by the ramp multiplier at the
           current position in the day: a piecewise approximation of the
           nonhomogeneous Poisson process, still fully deterministic. *)
        let m = ramp_mult cfg ~frac:(!t /. hf) in
        t := !t +. Rng.exponential r ~mean:(gap_base /. m);
        if !t >= on_end then running := false
        else begin
          let size = zipf r ~alpha:cfg.zipf_alpha ~lo:cfg.size_min ~hi:cfg.size_max in
          let dst =
            if cfg.guests = 1 then src
            else 1 + ((src + Rng.int r (cfg.guests - 1)) mod cfg.guests)
          in
          Buf.push bat (int_of_float !t);
          Buf.push bmeta (pack ~size ~tenant:tn ~src ~dst)
        end
      done;
      on_time.(tn) <- on_time.(tn) +. (on_end -. !now);
      now := on_end +. Rng.exponential r ~mean:cfg.off_mean
    done
  done;
  let n = bat.Buf.len in
  if n >= 1 lsl 22 then invalid_arg "Scenario.generate: over 4M flows";
  (* Global chronological order; ties broken by generation order (tenant,
     then sequence within tenant), which the pre-sort index encodes. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = compare bat.Buf.a.(i) bat.Buf.a.(j) in
      if c <> 0 then c else compare i j)
    order;
  let at = Array.make n 0 and meta = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    at.(i) <- bat.Buf.a.(order.(i));
    meta.(i) <- bmeta.Buf.a.(order.(i));
    total := !total + (meta.(i) land ((1 lsl 20) - 1))
  done;
  let fp = ref (Hashtbl.hash (n, cfg.tenants, cfg.guests)) in
  for i = 0 to n - 1 do
    fp := Hashtbl.hash (!fp, at.(i), meta.(i))
  done;
  { cfg; at; meta; total_packets = !total; on_time; fingerprint = !fp }

let config t = t.cfg
let flows t = Array.length t.at
let total_packets t = t.total_packets
let fingerprint t = t.fingerprint
let at t i = t.at.(i)
let size t i = t.meta.(i) land ((1 lsl 20) - 1)
let tenant t i = (t.meta.(i) lsr 20) land 0xFFF
let src t i = (t.meta.(i) lsr 32) land 0xFF
let dst t i = (t.meta.(i) lsr 40) land 0xFF

let on_fraction t ~tenant =
  if tenant < 0 || tenant >= t.cfg.tenants then
    invalid_arg "Scenario.on_fraction: tenant";
  t.on_time.(tenant) /. Int64.to_float t.cfg.horizon

let iter t f =
  for i = 0 to Array.length t.at - 1 do
    f ~flow:i ~at:t.at.(i) ~tenant:(tenant t i) ~src:(src t i) ~dst:(dst t i)
      ~size:(size t i)
  done
