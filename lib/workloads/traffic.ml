module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Rng = Vmk_sim.Rng

type t = { mutable injected : int; count : int }

let inject ?(on_inject = fun ~tag:_ ~at:_ -> ()) mach t ~key ~len =
  t.injected <- t.injected + 1;
  let tag = (key * 1_000_000) + t.injected in
  on_inject ~tag ~at:(Engine.now mach.Machine.engine);
  Nic.inject_rx mach.Machine.nic ~tag ~len

let constant_rate mach ~gate ~period ~len ~count ?(key = 1) ?on_inject () =
  let t = { injected = 0; count } in
  Engine.every mach.Machine.engine period (fun () ->
      if t.injected < count then begin
        if gate () then inject ?on_inject mach t ~key ~len;
        true
      end
      else false);
  t

let poisson_rate mach ~gate ~mean_period ~len ~count ?(key = 1) () =
  let t = { injected = 0; count } in
  let rng = Rng.split mach.Machine.rng in
  (* Schedule against absolute deadlines, not dispatch time: a long burn
     that jumps the clock must not stall the arrival process. *)
  let rec schedule at =
    Engine.at mach.Machine.engine at (fun () ->
        if t.injected < count then begin
          if gate () then inject mach t ~key ~len;
          let delay =
            Int64.of_float (max 1.0 (Rng.exponential rng ~mean:mean_period))
          in
          schedule (Int64.add at delay)
        end)
  in
  let first =
    Int64.add
      (Engine.now mach.Machine.engine)
      (Int64.of_float (max 1.0 (Rng.exponential rng ~mean:mean_period)))
  in
  schedule first;
  t

let injected t = t.injected
let done_ t = t.injected >= t.count
