module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Rng = Vmk_sim.Rng

type t = { mutable injected : int; count : int }

let inject ?(on_inject = fun ~tag:_ ~at:_ -> ()) mach t ~key ~len =
  t.injected <- t.injected + 1;
  let tag = (key * 1_000_000) + t.injected in
  on_inject ~tag ~at:(Engine.now mach.Machine.engine);
  Nic.inject_rx mach.Machine.nic ~tag ~len

let constant_rate mach ~gate ~period ~len ~count ?(key = 1) ?on_inject () =
  let t = { injected = 0; count } in
  Engine.every mach.Machine.engine period (fun () ->
      if t.injected < count then begin
        if gate () then inject ?on_inject mach t ~key ~len;
        true
      end
      else false);
  t

let poisson_rate mach ~gate ~mean_period ~len ~count ?(key = 1) () =
  let t = { injected = 0; count } in
  let rng = Rng.split mach.Machine.rng in
  (* Schedule against absolute deadlines, not dispatch time: a long burn
     that jumps the clock must not stall the arrival process. *)
  let rec schedule at =
    Engine.at mach.Machine.engine at (fun () ->
        if t.injected < count then begin
          if gate () then inject mach t ~key ~len;
          let delay =
            Int64.of_float (max 1.0 (Rng.exponential rng ~mean:mean_period))
          in
          schedule (Int64.add at delay)
        end)
  in
  let first =
    Int64.add
      (Engine.now mach.Machine.engine)
      (Int64.of_float (max 1.0 (Rng.exponential rng ~mean:mean_period)))
  in
  schedule first;
  t

let replay mach sched ~len ?(pkt_gap = 200L) ?on_inject () =
  let t = { injected = 0; count = Scenario.total_packets sched } in
  let engine = mach.Machine.engine in
  let n = Scenario.flows sched in
  (* Open-loop by design: no gate, no backoff. The schedule's absolute
     arrival times are replayed verbatim, so a congested stack sees the
     full offered load and the damage shows up at the sink (E22). *)
  let rec chain ~flow ~seq at =
    Engine.at engine at (fun () ->
        inject ?on_inject mach t ~key:(Scenario.dst sched flow) ~len;
        if seq + 1 < Scenario.size sched flow then
          chain ~flow ~seq:(seq + 1) (Int64.add at pkt_gap))
  in
  (* One walker event runs down the time-sorted flow list, so the event
     heap holds O(active flows) entries, not O(total flows). *)
  let rec walk i =
    if i < n then begin
      let at = Int64.of_int (Scenario.at sched i) in
      Engine.at engine at (fun () ->
          inject ?on_inject mach t ~key:(Scenario.dst sched i) ~len;
          if Scenario.size sched i > 1 then
            chain ~flow:i ~seq:1 (Int64.add at pkt_gap);
          walk (i + 1))
    end
  in
  walk 0;
  t

let injected t = t.injected
let done_ t = t.injected >= t.count
