(** Port-agnostic application workloads.

    Each constructor returns a [unit -> unit] body written purely against
    the {!Vmk_guest.Sys} ABI, so the identical workload runs on the
    native, Xen and L4 ports — the precondition for every cross-structure
    comparison in the paper (E4, E5, E8). Bodies swallow [Sys_error] into
    the [errors] counter rather than crashing, so fault-injection
    experiments can measure failed operations. *)

type stats = {
  mutable completed : int;  (** Operations that succeeded. *)
  mutable errors : int;  (** Operations that raised [Sys_error]. *)
  mutable bytes : int;  (** Payload bytes moved. *)
}

val stats : unit -> stats

val null_syscalls : ?stats:stats -> iterations:int -> unit -> unit -> unit
(** [getpid] in a tight loop with a token of user work — the lmbench
    null-syscall microbenchmark (E4). *)

val compute : ?stats:stats -> iterations:int -> work:int -> unit -> unit -> unit
(** Pure user-mode computation; the baseline that should cost the same
    everywhere. *)

val net_rx_stream :
  ?stats:stats -> packets:int -> unit -> unit -> unit
(** Receive [packets] packets (the [CG05] receive side, E3). Stops early
    when the network dies. *)

val net_rx_probe :
  ?stats:stats ->
  now:(unit -> int64) ->
  record:(tag:int -> at:int64 -> unit) ->
  packets:int ->
  unit ->
  unit ->
  unit
(** Like {!net_rx_stream}, but reports each packet's tag and virtual
    arrival time through [record] — paired with
    {!Traffic.constant_rate}'s [on_inject] this yields the per-packet
    latency distribution E15's degradation curves are built from. Stops
    at [packets] or on the first receive error. *)

val net_tx_stream :
  ?stats:stats -> packets:int -> len:int -> unit -> unit -> unit

val blk_mix :
  ?stats:stats ->
  ?base:int ->
  ops:int ->
  span:int ->
  seed:int ->
  unit ->
  unit ->
  unit
(** Alternating block writes and read-back-verify over the sector region
    [\[base, base+span)], deterministic in [seed]. A read returning a tag
    that was not the last write to that sector counts as an error, and the
    workload stops at the first failed operation (a dead storage path). *)

val blk_retry_stream :
  ?stats:stats ->
  ?base:int ->
  now:(unit -> int64) ->
  log:(int64 * bool -> unit) ->
  ops:int ->
  span:int ->
  seed:int ->
  pace:int ->
  unit ->
  unit ->
  unit
(** The fault-recovery probe (E13): [ops] write/read-verify pairs over
    [\[base, base+span)], deterministic in [seed], with [pace] cycles of
    user work between pairs. Unlike {!blk_mix} it does NOT stop on
    failure — each pair's outcome is passed to [log] as
    [(now (), success)], so the experiment can measure the outage window
    and the recovery point. *)

val fs_churn :
  ?stats:stats -> files:int -> blocks_per_file:int -> unit -> unit -> unit
(** Create files, append blocks, read them back and verify. *)

val mixed :
  ?stats:stats ->
  rounds:int ->
  ?syscalls_per_round:int ->
  ?work_per_round:int ->
  ?net_every:int ->
  ?packet_len:int ->
  ?blk_every:int ->
  unit ->
  unit ->
  unit
(** The macro workload (E5, E8): per round, a burst of null syscalls,
    some user work, a network transmit every [net_every] rounds and a
    block write/read pair every [blk_every] rounds. *)
