(** Deterministic open-loop scenario generator for datacenter-scale runs
    (E22): Zipf flow sizes x Poisson arrivals x on/off tenants under a
    piecewise diurnal rate ramp, all drawn from the seeded simulation
    Rng so the same seed yields a bit-for-bit identical schedule.

    The emitted schedule is {e open-loop}: arrival times are fixed at
    generation time and never back off when the system under test
    congests — overload surfaces as tail latency and loss at the sink,
    not reduced offered load at the source. *)

type config = {
  tenants : int;  (** independent on/off sources, 1..4095 *)
  guests : int;  (** fabric endpoints; tenant t sources from guest (t mod guests)+1 *)
  mean_flow_gap : float;
      (** mean cycles between flow starts per tenant while ON at ramp
          multiplier 1.0 (Poisson arrivals) *)
  zipf_alpha : float;  (** flow-size tail exponent (density ~ s^-alpha) *)
  size_min : int;  (** packets per flow, power-law lower bound (>= 1) *)
  size_max : int;  (** upper bound (< 2^20) *)
  on_mean : float;  (** mean ON dwell, cycles (exponential) *)
  off_mean : float;  (** mean OFF dwell, cycles (exponential) *)
  ramp : (float * float) array;
      (** piecewise-constant rate ramp: (start fraction of horizon,
          multiplier); starts must begin at 0.0 and increase *)
  horizon : int64;  (** length of the simulated day, cycles *)
}

val flat : (float * float) array
(** Single segment, multiplier 1.0 — no diurnal shape. *)

val diurnal : (float * float) array
(** Stylised datacenter day: trough, climb, midday peak, shoulder,
    evening peak, wind-down. *)

val ramp_mult : config -> frac:float -> float
(** Rate multiplier in effect at [frac] (fraction of horizon elapsed). *)

val zipf : Vmk_sim.Rng.t -> alpha:float -> lo:int -> hi:int -> int
(** Bounded power-law sample in [lo, hi] by inversion of the truncated
    Pareto CDF (discretised by flooring). *)

type t
(** A materialised schedule: flows sorted by arrival time. *)

val generate : ?seed:int64 -> ?tenant_rate:(int -> float) -> config -> t
(** [generate ?seed ?tenant_rate cfg] materialises the schedule.
    [tenant_rate] scales a tenant's flow arrival rate (default 1.0 for
    all) — the hook the fairness cells use to make one tenant an
    aggressor. Raises [Invalid_argument] on malformed configs. *)

val config : t -> config
val flows : t -> int
val total_packets : t -> int

val fingerprint : t -> int
(** Deterministic digest of the whole schedule (arrival times + flow
    metadata), for same-seed replay checks. *)

val at : t -> int -> int
(** Arrival cycle of flow [i]; nondecreasing in [i]. *)

val size : t -> int -> int
val tenant : t -> int -> int
val src : t -> int -> int
val dst : t -> int -> int

val on_fraction : t -> tenant:int -> float
(** Fraction of the horizon the tenant spent ON (duty-cycle accounting). *)

val iter :
  t ->
  (flow:int -> at:int -> tenant:int -> src:int -> dst:int -> size:int -> unit) ->
  unit
