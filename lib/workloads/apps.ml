module Sys_g = Vmk_guest.Sys

type stats = {
  mutable completed : int;
  mutable errors : int;
  mutable bytes : int;
}

let stats () = { completed = 0; errors = 0; bytes = 0 }
let default = stats

let attempt st f =
  match f () with
  | bytes ->
      st.completed <- st.completed + 1;
      st.bytes <- st.bytes + bytes;
      true
  | exception Sys_g.Sys_error _ ->
      st.errors <- st.errors + 1;
      false

let null_syscalls ?stats ~iterations () () =
  let st = match stats with Some s -> s | None -> default () in
  for _ = 1 to iterations do
    ignore
      (attempt st (fun () ->
           ignore (Sys_g.getpid ());
           Sys_g.burn 50;
           0))
  done

let compute ?stats ~iterations ~work () () =
  let st = match stats with Some s -> s | None -> default () in
  for _ = 1 to iterations do
    ignore
      (attempt st (fun () ->
           Sys_g.burn work;
           0))
  done

let net_rx_stream ?stats ~packets () () =
  let st = match stats with Some s -> s | None -> default () in
  let rec loop remaining =
    if remaining > 0 then
      if
        attempt st (fun () ->
            let len, _tag = Sys_g.net_recv () in
            len)
      then loop (remaining - 1)
  in
  loop packets

(* The E15 overload probe: receive until [packets] have arrived or the
   stack errors out (timeout after the traffic ends), recording each
   packet's (tag, virtual arrival time) so the experiment can compute
   per-packet latency against the injection times. *)
let net_rx_probe ?stats ~now ~record ~packets () () =
  let st = match stats with Some s -> s | None -> default () in
  let rec loop remaining =
    if remaining > 0 then
      if
        attempt st (fun () ->
            let len, tag = Sys_g.net_recv () in
            record ~tag ~at:(now ());
            len)
      then loop (remaining - 1)
  in
  loop packets

let net_tx_stream ?stats ~packets ~len () () =
  let st = match stats with Some s -> s | None -> default () in
  let rec loop i =
    if i < packets then
      if
        attempt st (fun () ->
            Sys_g.net_send ~len ~tag:(600_000 + i);
            len)
      then loop (i + 1)
  in
  loop 0

let blk_mix ?stats ?(base = 0) ~ops ~span ~seed () () =
  let st = match stats with Some s -> s | None -> default () in
  let written = Hashtbl.create 64 in
  let state = ref (seed land 0x3fffffff) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state
  in
  let rec loop i =
    if i < ops then begin
      let sector = base + (next () mod span) in
      let ok =
        if i land 1 = 0 then begin
          let tag = 1 + next () in
          if
            attempt st (fun () ->
                Sys_g.blk_write ~sector ~len:Sys_g.block_size ~tag;
                Sys_g.block_size)
          then begin
            Hashtbl.replace written sector tag;
            true
          end
          else false
        end
        else
          attempt st (fun () ->
              let tag = Sys_g.blk_read ~sector ~len:Sys_g.block_size in
              let expected =
                match Hashtbl.find_opt written sector with
                | Some t -> t
                | None -> 0
              in
              if tag <> expected then raise (Sys_g.Sys_error "data corruption");
              Sys_g.block_size)
      in
      if ok then loop (i + 1)
    end
  in
  loop 0

(* The E13 recovery probe: paced write/read-verify pairs that KEEP GOING
   through failures, logging (virtual time, success) per pair so the
   experiment can locate the outage window and the first post-fault
   success. *)
let blk_retry_stream ?stats ?(base = 0) ~now ~log ~ops ~span ~seed ~pace () () =
  let st = match stats with Some s -> s | None -> default () in
  let state = ref (seed land 0x3fffffff) in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3fffffff;
    !state
  in
  for i = 0 to ops - 1 do
    let sector = base + (next () mod span) in
    let tag = 1 + next () in
    let ok =
      attempt st (fun () ->
          Sys_g.blk_write ~sector ~len:Sys_g.block_size ~tag;
          let got = Sys_g.blk_read ~sector ~len:Sys_g.block_size in
          if got <> tag then raise (Sys_g.Sys_error "data corruption");
          2 * Sys_g.block_size)
    in
    log (now (), ok);
    if pace > 0 && i < ops - 1 then Sys_g.burn pace
  done

let fs_churn ?stats ~files ~blocks_per_file () () =
  let st = match stats with Some s -> s | None -> default () in
  let live = ref true in
  for f = 0 to files - 1 do
    if !live then begin
      match Sys_g.fs_create (Printf.sprintf "file%d" f) with
      | fd ->
          for b = 0 to blocks_per_file - 1 do
            if !live then begin
              let tag = (f * 1000) + b + 1 in
              if
                attempt st (fun () ->
                    Sys_g.fs_append ~fd ~tag;
                    Sys_g.block_size)
              then begin
                if
                  not
                    (attempt st (fun () ->
                         let got = Sys_g.fs_read ~fd ~index:b in
                         if got <> tag then
                           raise (Sys_g.Sys_error "fs corruption");
                         Sys_g.block_size))
                then live := false
              end
              else live := false
            end
          done
      | exception Sys_g.Sys_error _ ->
          st.errors <- st.errors + 1;
          live := false
    end
  done

let mixed ?stats ~rounds ?(syscalls_per_round = 10) ?(work_per_round = 2000)
    ?(net_every = 2) ?(packet_len = 512) ?(blk_every = 5) () () =
  let st = match stats with Some s -> s | None -> default () in
  let live = ref true in
  for round = 1 to rounds do
    if !live then begin
      for _ = 1 to syscalls_per_round do
        ignore
          (attempt st (fun () ->
               ignore (Sys_g.getpid ());
               0))
      done;
      Sys_g.burn work_per_round;
      if net_every > 0 && round mod net_every = 0 then
        ignore
          (attempt st (fun () ->
               Sys_g.net_send ~len:packet_len ~tag:(700_000 + round);
               packet_len));
      if blk_every > 0 && round mod blk_every = 0 then begin
        let sector = round mod 128 in
        if
          attempt st (fun () ->
              Sys_g.blk_write ~sector ~len:Sys_g.block_size ~tag:round;
              Sys_g.block_size)
        then
          ignore
            (attempt st (fun () ->
                 let tag = Sys_g.blk_read ~sector ~len:Sys_g.block_size in
                 if tag <> round then raise (Sys_g.Sys_error "data corruption");
                 Sys_g.block_size))
        else live := false
      end
    end
  done
