(** L4 port: the mini-OS as a microkernel server (L4Linux analog).

    The guest kernel is an ordinary thread; applications are threads in
    their own address spaces whose system calls are IPC calls to the
    guest-kernel server — exactly the structure of [HHL+97]. Device
    access goes through the user-level driver servers, adding one more
    IPC round trip per I/O, and the same guest-kernel work is charged as
    on the other ports.

    Wiring (see {!Vmk_core} scenarios): spawn {!Net_server}/{!Blk_server}
    threads, spawn {!guest_kernel_body} with their tids, then spawn each
    application with {!app_body}. *)

val gk_account : string
(** ["guestk"] — the guest-kernel server's cycle account. *)

type retry
(** Driver-RPC retry policy: bounded attempts with a per-call IPC
    timeout and exponential backoff (plus seeded jitter) between them.
    Counters: ["l4.retries"] per extra attempt, ["l4.gaveup"] per call
    abandoned after the budget. *)

val retry :
  mach:Vmk_hw.Machine.t ->
  ?attempts:int ->
  ?timeout:int64 ->
  ?base_delay:int64 ->
  Vmk_sim.Rng.t ->
  retry
(** Defaults: 5 attempts, 2M-cycle IPC timeout, 100K-cycle base delay
    (doubling per attempt). Derive the rng with {!Vmk_sim.Rng.split} to
    keep streams independent. *)

val guest_kernel_body :
  ?retry:retry ->
  ?net_svc:Vmk_ukernel.Svc.entry ->
  ?blk_svc:Vmk_ukernel.Svc.entry ->
  net:Vmk_ukernel.Sysif.tid option ->
  blk:Vmk_ukernel.Sysif.tid option ->
  unit ->
  unit
(** Server loop translating the mini-OS syscall protocol into driver
    RPC. A dead driver server surfaces as error replies to the
    application, not as a server crash.

    With [net_svc]/[blk_svc] the driver tid is re-read from the registry
    entry before every attempt (so a watchdog respawn is picked up
    transparently); the plain [net]/[blk] tids are used otherwise. With
    [retry], failed driver RPC — IPC error or [Proto.error] reply — is
    retried under the policy instead of failing the application call
    outright. *)

val app_body :
  Vmk_hw.Machine.t ->
  gk:Vmk_ukernel.Sysif.tid ->
  (unit -> unit) ->
  unit ->
  unit
(** Wrap an application: every {!Sys} syscall becomes
    [Sysif.call gk …]. Raises {!Sys.Sys_error} into the app when the
    guest kernel has died (E6's microkernel-side blast radius). *)
