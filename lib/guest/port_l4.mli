(** L4 port: the mini-OS as a microkernel server (L4Linux analog).

    The guest kernel is an ordinary thread; applications are threads in
    their own address spaces whose system calls are IPC calls to the
    guest-kernel server — exactly the structure of [HHL+97]. Device
    access goes through the user-level driver servers, adding one more
    IPC round trip per I/O, and the same guest-kernel work is charged as
    on the other ports.

    Wiring (see {!Vmk_core} scenarios): spawn {!Net_server}/{!Blk_server}
    threads, spawn {!guest_kernel_body} with their tids, then spawn each
    application with {!app_body}. *)

val gk_account : string
(** ["guestk"] — the guest-kernel server's cycle account. *)

type retry
(** Driver-RPC retry policy: bounded attempts with a per-call IPC
    timeout and exponential backoff (plus seeded jitter) between them.
    Counters: ["l4.retries"] per extra attempt, ["l4.gaveup"] per call
    abandoned after the budget. *)

val retry :
  mach:Vmk_hw.Machine.t ->
  ?attempts:int ->
  ?timeout:int64 ->
  ?base_delay:int64 ->
  Vmk_sim.Rng.t ->
  retry
(** Defaults: 5 attempts, 2M-cycle IPC timeout, 100K-cycle base delay
    (doubling per attempt). Derive the rng with {!Vmk_sim.Rng.split} to
    keep streams independent. *)

type vnet
(** Inter-guest fabric endpoint (E17): this guest kernel's address on
    the vnet, its bounded direct-IPC receive queue and its peer caches.
    The data path is gk → gk {!Vmk_ukernel.Sysif.call} with a string
    item — no driver server in the loop; only connection setup (one
    {!Vmk_ukernel.Proto.vnet_lookup} per new destination, one
    {!Vmk_ukernel.Proto.vnet_open} map-grant per new peer) touches the
    broker. *)

val vnet :
  mach:Vmk_hw.Machine.t ->
  port:int ->
  ?rx_capacity:int ->
  ?rx_policy:Vmk_overload.Overload.Bounded_queue.policy ->
  ?mark_at:int ->
  ?timeout:int64 ->
  ?ecn_delay:int64 ->
  unit ->
  vnet
(** [port] is the guest's fabric address (≥ 1, see
    {!Sys.vnet_tag}). The rx queue defaults to capacity 64, [Reject];
    [mark_at] arms the ECN watermark — marked replies make senders
    pause [ecn_delay] cycles (default 100K) before their next packet
    (counters ["overload.ecn_mark"]/["overload.ecn_backoff"]).
    [timeout] (default 2M cycles) bounds each data-path rendezvous.
    @raise Invalid_argument if [port < 1]. *)

val vnet_port : vnet -> int
val vnet_sent : vnet -> int
(** Packets delivered direct to a peer (excludes retries). *)

val vnet_received : vnet -> int

val guest_kernel_body :
  ?retry:retry ->
  ?net_svc:Vmk_ukernel.Svc.entry ->
  ?blk_svc:Vmk_ukernel.Svc.entry ->
  ?vnet:vnet ->
  net:Vmk_ukernel.Sysif.tid option ->
  blk:Vmk_ukernel.Sysif.tid option ->
  unit ->
  unit
(** Server loop translating the mini-OS syscall protocol into driver
    RPC. A dead driver server surfaces as error replies to the
    application, not as a server crash.

    With [net_svc]/[blk_svc] the driver tid is re-read from the registry
    entry before every attempt (so a watchdog respawn is picked up
    transparently); the plain [net]/[blk] tids are used otherwise. With
    [retry], failed driver RPC — IPC error or [Proto.error] reply — is
    retried under the policy instead of failing the application call
    outright.

    With [vnet] the guest joins the fabric: it registers [port] with
    the broker on startup, serves peers' {!Vmk_ukernel.Proto.vnet_pkt}
    IPC interleaved with the application's syscalls, and routes
    [G_net_send] with a resolvable vnet destination directly to the
    peer guest kernel ([G_net_recv] then serves the fabric queue);
    broadcast and unknown destinations fall back to the driver path. *)

val app_body :
  Vmk_hw.Machine.t ->
  gk:Vmk_ukernel.Sysif.tid ->
  (unit -> unit) ->
  unit ->
  unit
(** Wrap an application: every {!Sys} syscall becomes
    [Sysif.call gk …]. Raises {!Sys.Sys_error} into the app when the
    guest kernel has died (E6's microkernel-side blast radius). *)
