module Machine = Vmk_hw.Machine
module Segments = Vmk_hw.Segments
module Counter = Vmk_trace.Counter
module Rng = Vmk_sim.Rng
module Hcall = Vmk_vmm.Hcall
module Netfront = Vmk_vmm.Netfront
module Blkfront = Vmk_vmm.Blkfront
module Evt_mux = Vmk_vmm.Evt_mux
module Overload = Vmk_overload.Overload

let io_timeout = 50_000_000L

(* Sender pause after an ECN-marked transmit completion (E17): long
   enough for the receiver to drain below the watermark, far shorter
   than waiting out actual drops. *)
let ecn_delay = 100_000L

(* Recovery policy of a resilient guest: confirm the backend is dead
   (probe), wait for the toolstack to restart it, reconnect, and retry
   the failed operation — bounded attempts, exponential backoff. *)
type resilience = {
  attempts : int;
  backoff : int64;  (** Base inter-attempt delay; doubles per attempt. *)
  reconnect_timeout : int64;
}

let default_resilience =
  { attempts = 6; backoff = 200_000L; reconnect_timeout = 20_000_000L }

type state = {
  mach : Machine.t;
  id_gsys : int;
  id_ecn_backoff : int;
      (** Per-syscall / per-send counters pre-resolved at boot (E21);
          retry, give-up and reconnect stay string-keyed (cold). *)
  mux : Evt_mux.t;
  net : Netfront.t option;
  blk : Blkfront.t option;
  resilient : resilience option;
  timeout : int64;
  tx_backoff : Overload.Backoff.t;
      (** Schedule for waiting out transmit-ring back-pressure. *)
  mutable fs : Minifs.t option;
}

let net_exn st =
  match st.net with
  | Some front -> front
  | None -> raise (Sys.Sys_error "no network device")

let blk_exn st =
  match st.blk with
  | Some front -> front
  | None -> raise (Sys.Sys_error "no block device")

let backoff_wait st r n =
  let delay = Int64.mul r.backoff (Int64.shift_left 1L n) in
  match Hcall.block ~timeout:delay () with
  | Hcall.Events ports -> Evt_mux.dispatch st.mux ports
  | Hcall.Timed_out -> ()
  | exception Hcall.Hcall_error _ -> ()

(* After a failed operation: if the backend is dead, reconnect against
   its restarted incarnation and move the mux registration to the fresh
   port. [true] if the frontend is usable again (it never died, or the
   reconnect succeeded). *)
let recover_blk st r front =
  ignore (Blkfront.probe front);
  if not (Blkfront.backend_dead front) then true
  else if Blkfront.reconnect front ~timeout:r.reconnect_timeout () then begin
    Evt_mux.on st.mux (Blkfront.port front) (fun () -> Blkfront.pump front);
    Counter.incr st.mach.Machine.counters "xen.reconnects";
    true
  end
  else false

let recover_net st r front =
  ignore (Netfront.probe front);
  if not (Netfront.backend_dead front) then true
  else if Netfront.reconnect front ~timeout:r.reconnect_timeout () then begin
    Evt_mux.on st.mux (Netfront.port front) (fun () -> Netfront.pump front);
    Counter.incr st.mach.Machine.counters "xen.reconnects";
    true
  end
  else false

(* Run [once] under the resilience policy: a [G_error] outcome triggers
   recover + backoff + retry until the attempt budget runs out. *)
let with_retry st ~recover once =
  match st.resilient with
  | None -> once ()
  | Some r ->
      let counters = st.mach.Machine.counters in
      let rec attempt n =
        match once () with
        | Sys.G_error _ as failed ->
            if n + 1 >= r.attempts then begin
              Counter.incr counters "xen.gaveup";
              failed
            end
            else begin
              Counter.incr counters "xen.retries";
              if recover st r then begin
                backoff_wait st r n;
                attempt (n + 1)
              end
              else begin
                Counter.incr counters "xen.gaveup";
                failed
              end
            end
        | result -> result
      in
      attempt 0

let do_net_send st ~len ~tag =
  let front = net_exn st in
  (* ECN: a marked completion means the bridge found the destination's
     queue past its watermark — pace now, before drops start. *)
  if Netfront.take_ecn_mark front then begin
    Counter.incr_id st.mach.Machine.counters st.id_ecn_backoff;
    match Hcall.block ~timeout:ecn_delay () with
    | Hcall.Events ports -> Evt_mux.dispatch st.mux ports
    | Hcall.Timed_out -> ()
    | exception Hcall.Hcall_error _ -> ()
  end;
  (* Back off while transmit resources are exhausted (ring
     back-pressure), on the shared seeded schedule — retries and cycles
     spent waiting are itemized under [overload.retry] /
     [overload.backoff_cycles]. *)
  let once () =
    let exception Dead in
    let sleep d =
      match Hcall.block ~timeout:d () with
      | Hcall.Events ports -> Evt_mux.dispatch st.mux ports
      | Hcall.Timed_out -> ()
      | exception Hcall.Hcall_error _ -> ()
    in
    let try_once () =
      if Netfront.send front ~len ~tag then Some Sys.G_unit
      else if Netfront.backend_dead front then raise Dead
      else None
    in
    match
      Overload.Backoff.run st.tx_backoff ~counters:st.mach.Machine.counters
        ~sleep try_once
    with
    | Some result -> result
    | None -> Sys.G_error "transmit ring saturated"
    | exception Dead -> Sys.G_error "network backend dead"
  in
  with_retry st ~recover:(fun st r -> recover_net st r front) once

(* Wait out the tx ring: exiting with transmits still queued strands
   them (the backend's grant map fails against a dead domain), so a
   sender drains before its last return. *)
let do_net_drain st =
  let front = net_exn st in
  let drained () =
    Netfront.pump front;
    Netfront.tx_unacked front = 0 || Netfront.backend_dead front
  in
  let ok = Evt_mux.wait st.mux ~timeout:st.timeout ~until:drained () in
  if Netfront.backend_dead front then Sys.G_error "network backend dead"
  else if ok && Netfront.tx_unacked front = 0 then Sys.G_unit
  else Sys.G_error "network drain timed out"

let do_net_recv st =
  let front = net_exn st in
  let once () =
    let got = ref None in
    let arrived () =
      Netfront.pump front;
      (match !got with
      | None -> got := Netfront.try_recv front
      | Some _ -> ());
      !got <> None || Netfront.backend_dead front
    in
    let ok = Evt_mux.wait st.mux ~timeout:st.timeout ~until:arrived () in
    match (!got, ok) with
    | Some (len, tag), _ -> Sys.G_data { len; tag }
    | None, _ -> Sys.G_error "network receive failed"
  in
  with_retry st ~recover:(fun st r -> recover_net st r front) once

let do_blk st op ~sector ~len ~tag =
  let front = blk_exn st in
  let once () =
    match op with
    | `Write ->
        if
          Blkfront.write front ~mux:st.mux ~sector ~bytes:len ~tag
            ~timeout:st.timeout ()
        then Sys.G_unit
        else Sys.G_error "block write failed"
    | `Read -> begin
        match
          Blkfront.read front ~mux:st.mux ~sector ~bytes:len
            ~timeout:st.timeout ()
        with
        | Some tag -> Sys.G_data { len; tag }
        | None -> Sys.G_error "block read failed"
      end
  in
  with_retry st ~recover:(fun st r -> recover_blk st r front) once

let make_fs st =
  ignore (blk_exn st);
  let read ~sector =
    match do_blk st `Read ~sector ~len:Sys.block_size ~tag:0 with
    | Sys.G_data { tag; _ } -> Some tag
    | _ -> None
  in
  let write ~sector ~tag =
    match do_blk st `Write ~sector ~len:Sys.block_size ~tag with
    | Sys.G_unit -> true
    | _ -> false
  in
  Minifs.create ~read ~write ()

let get_fs st =
  match st.fs with
  | Some fs -> fs
  | None ->
      let fs = make_fs st in
      st.fs <- Some fs;
      fs

let handler st call =
  match call with
  | Sys.G_burn n ->
      Hcall.burn n;
      Sys.G_unit
  | _ -> begin
      Counter.incr_id st.mach.Machine.counters st.id_gsys;
      (* The user→kernel transition, fast or bounced. *)
      ignore (Hcall.syscall_trap ());
      Hcall.burn (Sys.kernel_work call);
      match call with
      | Sys.G_burn _ -> assert false
      | Sys.G_getpid -> Sys.G_int 1
      | Sys.G_yield ->
          Hcall.yield ();
          Sys.G_unit
      | Sys.G_net_send { len; tag } -> do_net_send st ~len ~tag
      | Sys.G_net_drain -> do_net_drain st
      | Sys.G_net_recv -> do_net_recv st
      | Sys.G_blk_write { sector; len; tag } -> do_blk st `Write ~sector ~len ~tag
      | Sys.G_blk_read { sector; len } -> do_blk st `Read ~sector ~len ~tag:0
      | Sys.G_fs_create name -> Sys.G_int (Minifs.open_or_create (get_fs st) name)
      | Sys.G_fs_append { fd; tag } ->
          Sys.G_bool (Minifs.append (get_fs st) ~fd ~tag)
      | Sys.G_fs_read { fd; index } -> begin
          match Minifs.read_block (get_fs st) ~fd ~index with
          | Some tag -> Sys.G_int tag
          | None -> Sys.G_error "fs read failed"
        end
      | Sys.G_exit -> Sys.G_unit
    end

let guest_body mach ?net ?blk ?(fast_syscall = true) ?(glibc_tls = false)
    ?(resilient = false) ?(io_timeout = io_timeout)
    ?(on_ready = fun () -> ()) ~app () =
  Hcall.set_trap_table ~int80_direct:fast_syscall;
  if glibc_tls then
    (* glibc's TLS setup: GS reaches the whole address space, so the live
       segments no longer exclude the VMM hole. *)
    Hcall.load_segment Segments.Gs { Segments.base = 0; limit = 0xFFFF_FFFF };
  let mux = Evt_mux.create () in
  let net_front =
    Option.map
      (fun (chan, backend) ->
        let front =
          Netfront.connect chan ~backend ~arch:mach.Machine.arch ()
        in
        Evt_mux.on mux (Netfront.port front) (fun () -> Netfront.pump front);
        front)
      net
  in
  let blk_front =
    Option.map
      (fun (chan, backend) ->
        let front = Blkfront.connect chan ~backend ~arch:mach.Machine.arch () in
        Evt_mux.on mux (Blkfront.port front) (fun () -> Blkfront.pump front);
        front)
      blk
  in
  let st =
    {
      mach;
      id_gsys = Counter.id mach.Machine.counters "gsys.count";
      id_ecn_backoff = Counter.id mach.Machine.counters Overload.ecn_backoff_counter;
      mux;
      net = net_front;
      blk = blk_front;
      resilient = (if resilient then Some default_resilience else None);
      timeout = io_timeout;
      (* 32 short doubling waits, capped well under [io_timeout]; the
         jitter stream splits off the machine RNG here, at a fixed
         point, so runs replay bit-for-bit. *)
      tx_backoff =
        Overload.Backoff.create ~attempts:32 ~base:50_000L ~cap:400_000L
          (Rng.split mach.Machine.rng);
      fs = None;
    }
  in
  on_ready ();
  Sys.run_with_handler ~handler:(handler st) app
