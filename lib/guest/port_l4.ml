module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter
module Rng = Vmk_sim.Rng
module Sysif = Vmk_ukernel.Sysif
module Proto = Vmk_ukernel.Proto
module Svc = Vmk_ukernel.Svc
module Overload = Vmk_overload.Overload

let gk_account = "guestk"

type retry = {
  attempts : int;
  timeout : int64;
  base_delay : int64;
  rng : Rng.t;
  mach : Machine.t;
}

let retry ~mach ?(attempts = 5) ?(timeout = 2_000_000L)
    ?(base_delay = 100_000L) rng =
  { attempts; timeout; base_delay; rng; mach }

(* Syscall opcodes on the wire between application and guest kernel. *)
let op_getpid = 1
let op_yield = 2
let op_net_send = 3
let op_net_recv = 4
let op_blk_write = 5
let op_blk_read = 6
let op_fs_create = 7
let op_fs_append = 8
let op_fs_read = 9
let op_exit = 10

(* --- guest-kernel server --- *)

type gk_state = {
  net : unit -> Sysif.tid option;
      (** Resolved per attempt, so a watchdog rebind takes effect. *)
  blk : unit -> Sysif.tid option;
  retry : retry option;
  mutable fs : Minifs.t option;
}

let kernel_work_of_op op =
  Sys.kernel_work
    (if op = op_getpid then Sys.G_getpid
     else if op = op_yield then Sys.G_yield
     else if op = op_net_send then Sys.G_net_send { len = 0; tag = 0 }
     else if op = op_net_recv then Sys.G_net_recv
     else if op = op_blk_write then Sys.G_blk_write { sector = 0; len = 0; tag = 0 }
     else if op = op_blk_read then Sys.G_blk_read { sector = 0; len = 0 }
     else if op = op_fs_create then Sys.G_fs_create ""
     else if op = op_fs_append then Sys.G_fs_append { fd = 0; tag = 0 }
     else if op = op_fs_read then Sys.G_fs_read { fd = 0; index = 0 }
     else Sys.G_exit)

let error_reply = Sysif.msg Proto.error
let ok_reply ?items () = Sysif.msg Proto.ok ?items

(* Transient outcomes worth retrying: a device fault ([error]) or the
   server shedding load ([busy], E15). *)
let retryable label = label = Proto.error || label = Proto.busy

(* One driver RPC. Without a retry policy this is the original
   fire-once call. With one, IPC failures (dead or wedged server) and
   retryable replies (transient device faults, overload sheds) are
   retried against a freshly resolved tid — picking up watchdog
   respawns — on the shared {!Overload.Backoff} schedule: exponential
   delay plus seeded jitter, itemized under [overload.retry] /
   [overload.backoff_cycles]. *)
let driver_call st resolve m =
  let once ?timeout server =
    match Sysif.call ?timeout server m with
    | _, reply -> Some reply
    | exception Sysif.Ipc_error _ -> None
  in
  match st.retry with
  | None -> Option.bind (resolve ()) (fun server -> once server)
  | Some r ->
      let counters = r.mach.Machine.counters in
      let backoff =
        Overload.Backoff.create ~attempts:r.attempts ~base:r.base_delay r.rng
      in
      let last = ref None in
      let try_once () =
        match
          Option.bind (resolve ()) (fun server -> once ~timeout:r.timeout server)
        with
        | Some reply when not (retryable reply.Sysif.label) -> Some reply
        | outcome ->
            last := outcome;
            None
      in
      let sleep d =
        Counter.incr counters "l4.retries";
        Sysif.sleep d
      in
      match Overload.Backoff.run backoff ~counters ~sleep try_once with
      | Some _ as reply -> reply
      | None ->
          Counter.incr counters "l4.gaveup";
          !last

let gk_blk_op st ~write ~sector ~bytes ~tag =
  if write then
    driver_call st st.blk
      (Sysif.msg Proto.blk_write
         ~items:[ Sysif.Words [| sector |]; Sysif.Str { bytes; tag } ])
  else
    driver_call st st.blk
      (Sysif.msg Proto.blk_read ~items:[ Sysif.Words [| sector; bytes |] ])

let gk_fs st =
  match st.fs with
  | Some fs -> fs
  | None ->
      let read ~sector =
        match gk_blk_op st ~write:false ~sector ~bytes:Sys.block_size ~tag:0 with
        | Some reply when reply.Sysif.label = Proto.ok ->
            Sysif.first_str_tag reply
        | Some _ | None -> None
      in
      let write ~sector ~tag =
        match gk_blk_op st ~write:true ~sector ~bytes:Sys.block_size ~tag with
        | Some reply -> reply.Sysif.label = Proto.ok
        | None -> false
      in
      let fs = Minifs.create ~read ~write () in
      st.fs <- Some fs;
      fs

let serve st (m : Sysif.msg) =
  let w = Sysif.words m in
  let arg i = if Array.length w > i then w.(i) else 0 in
  let op = arg 0 in
  Sysif.burn (kernel_work_of_op op);
  if op = op_getpid then ok_reply ~items:[ Sysif.Words [| 1 |] ] ()
  else if op = op_yield then begin
    Sysif.yield ();
    ok_reply ()
  end
  else if op = op_net_send then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    match
      driver_call st st.net
        (Sysif.msg Proto.net_send ~items:[ Sysif.Str { bytes; tag } ])
    with
    | Some reply when reply.Sysif.label = Proto.ok -> ok_reply ()
    | Some _ | None -> error_reply
  end
  else if op = op_net_recv then begin
    match driver_call st st.net (Sysif.msg Proto.net_recv) with
    | Some reply when reply.Sysif.label = Proto.ok ->
        let bytes = Sysif.str_total reply in
        let tag = Option.value (Sysif.first_str_tag reply) ~default:0 in
        ok_reply ~items:[ Sysif.Str { bytes; tag } ] ()
    | Some _ | None -> error_reply
  end
  else if op = op_blk_write then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    match gk_blk_op st ~write:true ~sector:(arg 1) ~bytes ~tag with
    | Some reply when reply.Sysif.label = Proto.ok -> ok_reply ()
    | Some _ | None -> error_reply
  end
  else if op = op_blk_read then begin
    match gk_blk_op st ~write:false ~sector:(arg 1) ~bytes:(arg 2) ~tag:0 with
    | Some reply when reply.Sysif.label = Proto.ok ->
        let tag = Option.value (Sysif.first_str_tag reply) ~default:0 in
        ok_reply ~items:[ Sysif.Str { bytes = arg 2; tag } ] ()
    | Some _ | None -> error_reply
  end
  else if op = op_fs_create then begin
    let fd = Minifs.open_or_create (gk_fs st) (string_of_int (arg 1)) in
    ok_reply ~items:[ Sysif.Words [| fd |] ] ()
  end
  else if op = op_fs_append then begin
    if Minifs.append (gk_fs st) ~fd:(arg 1) ~tag:(arg 2) then ok_reply ()
    else error_reply
  end
  else if op = op_fs_read then begin
    match Minifs.read_block (gk_fs st) ~fd:(arg 1) ~index:(arg 2) with
    | Some tag -> ok_reply ~items:[ Sysif.Words [| tag |] ] ()
    | None -> error_reply
  end
  else if op = op_exit then ok_reply ()
  else error_reply

let guest_kernel_body ?retry ?net_svc ?blk_svc ~net ~blk () =
  let resolve svc fixed =
    match svc with
    | Some e -> fun () -> Some (Svc.tid e)
    | None -> fun () -> fixed
  in
  let st =
    {
      net = resolve net_svc net;
      blk = resolve blk_svc blk;
      retry;
      fs = None;
    }
  in
  let rec loop (client, m) =
    let reply = serve st m in
    match Sysif.reply_wait client reply with
    | next -> loop next
    | exception Sysif.Ipc_error _ ->
        (* Client died mid-call; serve the next one. *)
        loop (Sysif.recv Sysif.Any)
  in
  loop (Sysif.recv Sysif.Any)

(* --- application side --- *)

let gk_call gk m =
  match Sysif.call gk m with
  | _, reply -> reply
  | exception Sysif.Ipc_error _ -> raise (Sys.Sys_error "guest kernel dead")

let handler mach gk =
  let name_ids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let next_name = ref 1 in
  let intern name =
    match Hashtbl.find_opt name_ids name with
    | Some id -> id
    | None ->
        let id = !next_name in
        incr next_name;
        Hashtbl.add name_ids name id;
        id
  in
  fun call ->
    match call with
    | Sys.G_burn n ->
        Sysif.burn n;
        Sys.G_unit
    | _ -> begin
        Counter.incr mach.Machine.counters "gsys.count";
        let rpc ?items words =
          gk_call gk
            (Sysif.msg Proto.guest_syscall
               ~items:(Sysif.Words words :: Option.value items ~default:[]))
        in
        let reply =
          match call with
          | Sys.G_burn _ -> assert false
          | Sys.G_getpid -> rpc [| op_getpid |]
          | Sys.G_yield -> rpc [| op_yield |]
          | Sys.G_net_send { len; tag } ->
              rpc [| op_net_send |] ~items:[ Sysif.Str { bytes = len; tag } ]
          | Sys.G_net_recv -> rpc [| op_net_recv |]
          | Sys.G_blk_write { sector; len; tag } ->
              rpc
                [| op_blk_write; sector |]
                ~items:[ Sysif.Str { bytes = len; tag } ]
          | Sys.G_blk_read { sector; len } -> rpc [| op_blk_read; sector; len |]
          | Sys.G_fs_create name -> rpc [| op_fs_create; intern name |]
          | Sys.G_fs_append { fd; tag } -> rpc [| op_fs_append; fd; tag |]
          | Sys.G_fs_read { fd; index } -> rpc [| op_fs_read; fd; index |]
          | Sys.G_exit -> rpc [| op_exit |]
        in
        if reply.Sysif.label <> Proto.ok then Sys.G_error "syscall failed"
        else begin
          let w = Sysif.words reply in
          match call with
          | Sys.G_getpid | Sys.G_fs_create _ | Sys.G_fs_read _ ->
              Sys.G_int (if Array.length w > 0 then w.(0) else 0)
          | Sys.G_net_recv | Sys.G_blk_read _ ->
              let len = Sysif.str_total reply in
              let tag = Option.value (Sysif.first_str_tag reply) ~default:0 in
              Sys.G_data { len; tag }
          | Sys.G_burn _ | Sys.G_yield | Sys.G_net_send _ | Sys.G_blk_write _
          | Sys.G_fs_append _ | Sys.G_exit ->
              Sys.G_unit
        end
      end

let app_body mach ~gk app () = Sys.run_with_handler ~handler:(handler mach gk) app
