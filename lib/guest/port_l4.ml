module Machine = Vmk_hw.Machine
module Counter = Vmk_trace.Counter
module Rng = Vmk_sim.Rng
module Sysif = Vmk_ukernel.Sysif
module Proto = Vmk_ukernel.Proto
module Svc = Vmk_ukernel.Svc
module Overload = Vmk_overload.Overload

let gk_account = "guestk"

type retry = {
  attempts : int;
  timeout : int64;
  base_delay : int64;
  rng : Rng.t;
  mach : Machine.t;
}

let retry ~mach ?(attempts = 5) ?(timeout = 2_000_000L)
    ?(base_delay = 100_000L) rng =
  { attempts; timeout; base_delay; rng; mach }

(* Syscall opcodes on the wire between application and guest kernel. *)
let op_getpid = 1
let op_yield = 2
let op_net_send = 3
let op_net_recv = 4
let op_blk_write = 5
let op_blk_read = 6
let op_fs_create = 7
let op_fs_append = 8
let op_fs_read = 9
let op_exit = 10

(* --- inter-guest vnet endpoint (E17) --- *)

(* Guest-kernel work per direct-IPC packet beyond the kernel-charged
   rendezvous/transfer: queue handling, header decode. *)
let vnet_rx_work = 300

(* Pre-resolved counter ids for the per-packet direct-IPC path (E21).
   Retry/give-up and connection-setup counters stay string-keyed — they
   fire per backoff event or per peer, not per packet. *)
type vnet_ids = {
  vi_tx : int;
  vi_ecn_mark : int;
  vi_ecn_backoff : int;
  vi_vnet_drop : int;
  vi_drop : int;
}

type vnet = {
  v_mach : Machine.t;
  v_ids : vnet_ids;
  v_port : int;  (** This guest's address on the fabric. *)
  v_rx : (int * int) Overload.Bounded_queue.t;  (** (tag, len) *)
  v_timeout : int64;  (** Rendezvous timeout on the data path. *)
  v_ecn_delay : int64;  (** Sender pause after a marked reply. *)
  v_peers : (int, Sysif.tid) Hashtbl.t;  (** Resolved port -> gk tid. *)
  v_opened : (int, unit) Hashtbl.t;  (** Peers with the mapping set up. *)
  v_unknown : (int, unit) Hashtbl.t;  (** Negative lookup cache. *)
  mutable v_sent : int;
  mutable v_received : int;
}

let vnet ~mach ~port ?(rx_capacity = 64)
    ?(rx_policy = Overload.Bounded_queue.Reject) ?mark_at
    ?(timeout = 2_000_000L) ?(ecn_delay = 100_000L) () =
  if port < 1 then invalid_arg "Port_l4.vnet: port < 1";
  let c = mach.Machine.counters in
  {
    v_mach = mach;
    v_ids =
      {
        vi_tx = Counter.id c "l4.vnet_tx";
        vi_ecn_mark = Counter.id c Overload.ecn_mark_counter;
        vi_ecn_backoff = Counter.id c Overload.ecn_backoff_counter;
        vi_vnet_drop = Counter.id c "vnet.drop";
        vi_drop = Counter.id c Overload.drop_counter;
      };
    v_port = port;
    v_rx =
      Overload.Bounded_queue.create ~policy:rx_policy ?mark_at
        ~capacity:rx_capacity ();
    v_timeout = timeout;
    v_ecn_delay = ecn_delay;
    v_peers = Hashtbl.create 8;
    v_opened = Hashtbl.create 8;
    v_unknown = Hashtbl.create 8;
    v_sent = 0;
    v_received = 0;
  }

let vnet_port v = v.v_port
let vnet_sent v = v.v_sent
let vnet_received v = v.v_received

(* --- guest-kernel server --- *)

type gk_state = {
  net : unit -> Sysif.tid option;
      (** Resolved per attempt, so a watchdog rebind takes effect. *)
  blk : unit -> Sysif.tid option;
  retry : retry option;
  vnet : vnet option;
  mutable fs : Minifs.t option;
}

let kernel_work_of_op op =
  Sys.kernel_work
    (if op = op_getpid then Sys.G_getpid
     else if op = op_yield then Sys.G_yield
     else if op = op_net_send then Sys.G_net_send { len = 0; tag = 0 }
     else if op = op_net_recv then Sys.G_net_recv
     else if op = op_blk_write then Sys.G_blk_write { sector = 0; len = 0; tag = 0 }
     else if op = op_blk_read then Sys.G_blk_read { sector = 0; len = 0 }
     else if op = op_fs_create then Sys.G_fs_create ""
     else if op = op_fs_append then Sys.G_fs_append { fd = 0; tag = 0 }
     else if op = op_fs_read then Sys.G_fs_read { fd = 0; index = 0 }
     else Sys.G_exit)

let error_reply = Sysif.msg Proto.error
let ok_reply ?items () = Sysif.msg Proto.ok ?items

(* Transient outcomes worth retrying: a device fault ([error]) or the
   server shedding load ([busy], E15). *)
let retryable label = label = Proto.error || label = Proto.busy

(* One driver RPC. Without a retry policy this is the original
   fire-once call. With one, IPC failures (dead or wedged server) and
   retryable replies (transient device faults, overload sheds) are
   retried against a freshly resolved tid — picking up watchdog
   respawns — on the shared {!Overload.Backoff} schedule: exponential
   delay plus seeded jitter, itemized under [overload.retry] /
   [overload.backoff_cycles]. *)
let driver_call st resolve m =
  let once ?timeout server =
    match Sysif.call ?timeout server m with
    | _, reply -> Some reply
    | exception Sysif.Ipc_error _ -> None
  in
  match st.retry with
  | None -> Option.bind (resolve ()) (fun server -> once server)
  | Some r ->
      let counters = r.mach.Machine.counters in
      let backoff =
        Overload.Backoff.create ~attempts:r.attempts ~base:r.base_delay r.rng
      in
      let last = ref None in
      let try_once () =
        match
          Option.bind (resolve ()) (fun server -> once ~timeout:r.timeout server)
        with
        | Some reply when not (retryable reply.Sysif.label) -> Some reply
        | outcome ->
            last := outcome;
            None
      in
      let sleep d =
        Counter.incr counters "l4.retries";
        Sysif.sleep d
      in
      match Overload.Backoff.run backoff ~counters ~sleep try_once with
      | Some _ as reply -> reply
      | None ->
          Counter.incr counters "l4.gaveup";
          !last

let reply_safely dst m = try Sysif.send dst m with Sysif.Ipc_error _ -> ()

(* Receiver half of the direct channel: queue the packet, answer with
   the ECN mark — or [busy] when the bounded queue rejects (the sender
   retries under backoff, exactly like a shedding driver). *)
let vnet_accept v (m : Sysif.msg) =
  let counters = v.v_mach.Machine.counters in
  Sysif.burn vnet_rx_work;
  let len = Sysif.str_total m in
  let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
  match
    Overload.Bounded_queue.push v.v_rx
      ~now:(Vmk_sim.Engine.now v.v_mach.Machine.engine)
      (tag, len)
  with
  | Overload.Bounded_queue.Accepted | Overload.Bounded_queue.Displaced _ ->
      v.v_received <- v.v_received + 1;
      let mark = Overload.Bounded_queue.marked v.v_rx in
      if mark then Counter.incr_id counters v.v_ids.vi_ecn_mark;
      ok_reply ~items:[ Sysif.Words [| (if mark then 1 else 0) |] ] ()
  | Overload.Bounded_queue.Rejected | Overload.Bounded_queue.Retry_until _ ->
      Counter.incr_id counters v.v_ids.vi_vnet_drop;
      Counter.incr_id counters v.v_ids.vi_drop;
      Sysif.msg Proto.busy

let vnet_open_accept v (m : Sysif.msg) =
  (* Accepting the granted fpage {e is} the channel setup; the kernel
     already charged the map transfer. *)
  ignore (Sysif.map_items m);
  Counter.incr v.v_mach.Machine.counters "l4.vnet_accepted";
  ok_reply ()

(* Resolve a destination port to its guest kernel: peer cache, then one
   broker round trip ({!Proto.vnet_lookup}); misses are cached
   negatively so unknown ports cost one lookup, not one per packet. *)
let vnet_resolve st v dst =
  match Hashtbl.find_opt v.v_peers dst with
  | Some tid -> Some tid
  | None ->
      if Hashtbl.mem v.v_unknown dst then None
      else begin
        match
          driver_call st st.net
            (Sysif.msg Proto.vnet_lookup ~items:[ Sysif.Words [| dst |] ])
        with
        | Some r
          when r.Sysif.label = Proto.ok && Array.length (Sysif.words r) > 0
          ->
            let tid = (Sysif.words r).(0) in
            Hashtbl.replace v.v_peers dst tid;
            Some tid
        | Some _ | None ->
            Hashtbl.replace v.v_unknown dst ();
            None
      end

(* First contact with a peer: grant it a page — the shared-mapping setup
   of the direct channel. Failure is not fatal; the data path still
   works and the open is retried on the next send. *)
let vnet_open_peer v peer dst =
  if not (Hashtbl.mem v.v_opened dst) then begin
    match
      Sysif.call ~timeout:v.v_timeout peer
        (Sysif.msg Proto.vnet_open
           ~items:[ Sysif.Map { fpage = Sysif.alloc_pages 1; grant = true } ])
    with
    | _, r when r.Sysif.label = Proto.ok ->
        Counter.incr v.v_mach.Machine.counters "l4.vnet_open";
        Hashtbl.replace v.v_opened dst ()
    | _, _ -> ()
    | exception Sysif.Ipc_error _ -> ()
  end

(* One data packet, gk → gk, as a Call carrying a string item; the
   reply bounces the receiver's ECN mark. [busy] and missed rendezvous
   retry on the shared backoff schedule. *)
let vnet_send st v ~len ~tag peer =
  let counters = v.v_mach.Machine.counters in
  let once () =
    match
      Sysif.call ~timeout:v.v_timeout peer
        (Sysif.msg Proto.vnet_pkt ~items:[ Sysif.Str { bytes = len; tag } ])
    with
    | _, r when r.Sysif.label = Proto.ok ->
        v.v_sent <- v.v_sent + 1;
        Counter.incr_id counters v.v_ids.vi_tx;
        let w = Sysif.words r in
        if Array.length w > 0 && w.(0) = 1 then begin
          (* Receiver past its watermark: pace before it drops. *)
          Counter.incr_id counters v.v_ids.vi_ecn_backoff;
          Sysif.sleep v.v_ecn_delay
        end;
        Some (ok_reply ())
    | _, r when r.Sysif.label = Proto.busy -> None
    | _, _ -> Some error_reply
    | exception Sysif.Ipc_error _ -> None
  in
  match st.retry with
  | None -> ( match once () with Some reply -> reply | None -> error_reply)
  | Some r -> (
      let backoff =
        Overload.Backoff.create ~attempts:r.attempts ~base:r.base_delay r.rng
      in
      let sleep d =
        Counter.incr counters "l4.retries";
        Sysif.sleep d
      in
      match Overload.Backoff.run backoff ~counters ~sleep once with
      | Some reply -> reply
      | None ->
          Counter.incr counters "l4.gaveup";
          error_reply)

(* Blocking receive off the fabric: drain the local queue, else sit in
   an open receive absorbing direct-IPC traffic (senders are
   Call-blocked on us, so a plain send always reaches them) until a
   packet lands or the timeout fires. *)
let rec vnet_recv st v =
  match Overload.Bounded_queue.pop v.v_rx with
  | Some (tag, len) -> ok_reply ~items:[ Sysif.Str { bytes = len; tag } ] ()
  | None -> (
      match Sysif.recv ~timeout:v.v_timeout Sysif.Any with
      | src, m when m.Sysif.label = Proto.vnet_pkt ->
          reply_safely src (vnet_accept v m);
          vnet_recv st v
      | src, m when m.Sysif.label = Proto.vnet_open ->
          reply_safely src (vnet_open_accept v m);
          vnet_recv st v
      | src, _ ->
          reply_safely src error_reply;
          vnet_recv st v
      | exception Sysif.Ipc_error Sysif.Timeout -> error_reply
      | exception Sysif.Ipc_error _ -> error_reply)

let gk_blk_op st ~write ~sector ~bytes ~tag =
  if write then
    driver_call st st.blk
      (Sysif.msg Proto.blk_write
         ~items:[ Sysif.Words [| sector |]; Sysif.Str { bytes; tag } ])
  else
    driver_call st st.blk
      (Sysif.msg Proto.blk_read ~items:[ Sysif.Words [| sector; bytes |] ])

let gk_fs st =
  match st.fs with
  | Some fs -> fs
  | None ->
      let read ~sector =
        match gk_blk_op st ~write:false ~sector ~bytes:Sys.block_size ~tag:0 with
        | Some reply when reply.Sysif.label = Proto.ok ->
            Sysif.first_str_tag reply
        | Some _ | None -> None
      in
      let write ~sector ~tag =
        match gk_blk_op st ~write:true ~sector ~bytes:Sys.block_size ~tag with
        | Some reply -> reply.Sysif.label = Proto.ok
        | None -> false
      in
      let fs = Minifs.create ~read ~write () in
      st.fs <- Some fs;
      fs

let serve st (m : Sysif.msg) =
  let w = Sysif.words m in
  let arg i = if Array.length w > i then w.(i) else 0 in
  let op = arg 0 in
  Sysif.burn (kernel_work_of_op op);
  if op = op_getpid then ok_reply ~items:[ Sysif.Words [| 1 |] ] ()
  else if op = op_yield then begin
    Sysif.yield ();
    ok_reply ()
  end
  else if op = op_net_send then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    (* On the fabric, a resolvable vnet destination goes direct
       (gk → gk IPC); everything else — broadcast, unknown ports,
       plain traffic — takes the driver path. *)
    let direct =
      match st.vnet with
      | None -> None
      | Some v ->
          let dst = Sys.vnet_dst tag in
          if dst = Sys.vnet_broadcast then None
          else
            Option.map
              (fun peer -> (v, peer, dst))
              (vnet_resolve st v dst)
    in
    match direct with
    | Some (v, peer, dst) ->
        vnet_open_peer v peer dst;
        vnet_send st v ~len:bytes ~tag peer
    | None -> (
        match
          driver_call st st.net
            (Sysif.msg Proto.net_send ~items:[ Sysif.Str { bytes; tag } ])
        with
        | Some reply when reply.Sysif.label = Proto.ok -> ok_reply ()
        | Some _ | None -> error_reply)
  end
  else if op = op_net_recv then begin
    match st.vnet with
    | Some v -> vnet_recv st v
    | None -> (
        match driver_call st st.net (Sysif.msg Proto.net_recv) with
        | Some reply when reply.Sysif.label = Proto.ok ->
            let bytes = Sysif.str_total reply in
            let tag = Option.value (Sysif.first_str_tag reply) ~default:0 in
            ok_reply ~items:[ Sysif.Str { bytes; tag } ] ()
        | Some _ | None -> error_reply)
  end
  else if op = op_blk_write then begin
    let bytes = Sysif.str_total m in
    let tag = Option.value (Sysif.first_str_tag m) ~default:0 in
    match gk_blk_op st ~write:true ~sector:(arg 1) ~bytes ~tag with
    | Some reply when reply.Sysif.label = Proto.ok -> ok_reply ()
    | Some _ | None -> error_reply
  end
  else if op = op_blk_read then begin
    match gk_blk_op st ~write:false ~sector:(arg 1) ~bytes:(arg 2) ~tag:0 with
    | Some reply when reply.Sysif.label = Proto.ok ->
        let tag = Option.value (Sysif.first_str_tag reply) ~default:0 in
        ok_reply ~items:[ Sysif.Str { bytes = arg 2; tag } ] ()
    | Some _ | None -> error_reply
  end
  else if op = op_fs_create then begin
    let fd = Minifs.open_or_create (gk_fs st) (string_of_int (arg 1)) in
    ok_reply ~items:[ Sysif.Words [| fd |] ] ()
  end
  else if op = op_fs_append then begin
    if Minifs.append (gk_fs st) ~fd:(arg 1) ~tag:(arg 2) then ok_reply ()
    else error_reply
  end
  else if op = op_fs_read then begin
    match Minifs.read_block (gk_fs st) ~fd:(arg 1) ~index:(arg 2) with
    | Some tag -> ok_reply ~items:[ Sysif.Words [| tag |] ] ()
    | None -> error_reply
  end
  else if op = op_exit then ok_reply ()
  else error_reply

let guest_kernel_body ?retry ?net_svc ?blk_svc ?vnet ~net ~blk () =
  let resolve svc fixed =
    match svc with
    | Some e -> fun () -> Some (Svc.tid e)
    | None -> fun () -> fixed
  in
  let st =
    {
      net = resolve net_svc net;
      blk = resolve blk_svc blk;
      retry;
      vnet;
      fs = None;
    }
  in
  (* Join the fabric before serving: register our port with the broker
     so peers can resolve us. *)
  (match st.vnet with
  | None -> ()
  | Some v -> (
      match
        driver_call st st.net
          (Sysif.msg Proto.vnet_attach ~items:[ Sysif.Words [| v.v_port |] ])
      with
      | Some r when r.Sysif.label = Proto.ok -> ()
      | Some _ | None ->
          Logs.warn (fun m -> m "gk: vnet attach failed (port %d)" v.v_port)));
  (* Peers on the fabric talk to this server directly, interleaved with
     the application's syscalls. *)
  let handle (m : Sysif.msg) =
    if m.Sysif.label = Proto.vnet_pkt then
      match st.vnet with Some v -> vnet_accept v m | None -> error_reply
    else if m.Sysif.label = Proto.vnet_open then
      match st.vnet with
      | Some v -> vnet_open_accept v m
      | None -> error_reply
    else serve st m
  in
  let rec loop (client, m) =
    let reply = handle m in
    match Sysif.reply_wait client reply with
    | next -> loop next
    | exception Sysif.Ipc_error _ ->
        (* Client died mid-call; serve the next one. *)
        loop (Sysif.recv Sysif.Any)
  in
  loop (Sysif.recv Sysif.Any)

(* --- application side --- *)

let gk_call gk m =
  match Sysif.call gk m with
  | _, reply -> reply
  | exception Sysif.Ipc_error _ -> raise (Sys.Sys_error "guest kernel dead")

let handler mach gk =
  let id_gsys = Counter.id mach.Machine.counters "gsys.count" in
  let name_ids : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let next_name = ref 1 in
  let intern name =
    match Hashtbl.find_opt name_ids name with
    | Some id -> id
    | None ->
        let id = !next_name in
        incr next_name;
        Hashtbl.add name_ids name id;
        id
  in
  fun call ->
    match call with
    | Sys.G_burn n ->
        Sysif.burn n;
        Sys.G_unit
    | _ -> begin
        Counter.incr_id mach.Machine.counters id_gsys;
        let rpc ?items words =
          gk_call gk
            (Sysif.msg Proto.guest_syscall
               ~items:(Sysif.Words words :: Option.value items ~default:[]))
        in
        let reply =
          match call with
          | Sys.G_burn _ -> assert false
          | Sys.G_getpid -> rpc [| op_getpid |]
          | Sys.G_yield -> rpc [| op_yield |]
          | Sys.G_net_send { len; tag } ->
              rpc [| op_net_send |] ~items:[ Sysif.Str { bytes = len; tag } ]
          | Sys.G_net_drain ->
              (* Direct-IPC sends are synchronous calls: by the time
                 [vnet_send] returns the packet sits in the peer's
                 endpoint queue, so there is nothing in flight. *)
              Sysif.msg Proto.ok
          | Sys.G_net_recv -> rpc [| op_net_recv |]
          | Sys.G_blk_write { sector; len; tag } ->
              rpc
                [| op_blk_write; sector |]
                ~items:[ Sysif.Str { bytes = len; tag } ]
          | Sys.G_blk_read { sector; len } -> rpc [| op_blk_read; sector; len |]
          | Sys.G_fs_create name -> rpc [| op_fs_create; intern name |]
          | Sys.G_fs_append { fd; tag } -> rpc [| op_fs_append; fd; tag |]
          | Sys.G_fs_read { fd; index } -> rpc [| op_fs_read; fd; index |]
          | Sys.G_exit -> rpc [| op_exit |]
        in
        if reply.Sysif.label <> Proto.ok then Sys.G_error "syscall failed"
        else begin
          let w = Sysif.words reply in
          match call with
          | Sys.G_getpid | Sys.G_fs_create _ | Sys.G_fs_read _ ->
              Sys.G_int (if Array.length w > 0 then w.(0) else 0)
          | Sys.G_net_recv | Sys.G_blk_read _ ->
              let len = Sysif.str_total reply in
              let tag = Option.value (Sysif.first_str_tag reply) ~default:0 in
              Sys.G_data { len; tag }
          | Sys.G_burn _ | Sys.G_yield | Sys.G_net_send _ | Sys.G_net_drain
          | Sys.G_blk_write _ | Sys.G_fs_append _ | Sys.G_exit ->
              Sys.G_unit
        end
      end

let app_body mach ~gk app () = Sys.run_with_handler ~handler:(handler mach gk) app
