(** The mini-OS system-call interface.

    The paper's §3.3 point — "treat the OS as a component" — requires
    running {e the same} operating system workload on three hosting
    structures. This module is that OS's syscall ABI: application code
    written against these wrappers runs unchanged on {!Port_native} (bare
    machine), {!Port_xen} (paravirtualised domain) and {!Port_l4}
    (L4Linux-style server on the microkernel). Each port installs a
    handler for the single {!Gsys} effect and charges that structure's
    costs for the identical guest-kernel work. *)

type gcall =
  | G_burn of int  (** User-mode computation — not a system call. *)
  | G_getpid  (** The canonical null syscall (experiment E4). *)
  | G_yield
  | G_net_send of { len : int; tag : int }
  | G_net_drain  (** Wait until every queued transmit has completed. *)
  | G_net_recv  (** Block until a packet arrives. *)
  | G_blk_write of { sector : int; len : int; tag : int }
  | G_blk_read of { sector : int; len : int }
  | G_fs_create of string
  | G_fs_append of { fd : int; tag : int }
      (** Append one 512-byte block to the file. *)
  | G_fs_read of { fd : int; index : int }
      (** Read the [index]-th block of the file. *)
  | G_exit

type gret =
  | G_unit
  | G_int of int
  | G_bool of bool
  | G_data of { len : int; tag : int }
  | G_error of string

type _ Effect.t += Gsys : gcall -> gret Effect.t

exception Sys_error of string
(** Raised by wrappers on [G_error] — e.g. when the I/O stack below the
    guest has died (experiment E6). *)

(** {1 Application-side wrappers} *)

val burn : int -> unit
val getpid : unit -> int
val yield : unit -> unit

val net_send : len:int -> tag:int -> unit
(** @raise Sys_error if the packet could not be queued. *)

val net_drain : unit -> unit
(** Wait until every transmit queued by {!net_send} has completed. A
    sender must drain before exiting on the Xen port — a domain that
    dies with requests still in its tx ring strands them. A no-op on
    ports whose send path is synchronous (L4 direct IPC).
    @raise Sys_error on timeout or when the network is gone. *)

val net_recv : unit -> int * int
(** Blocking receive; returns [(len, tag)].
    @raise Sys_error when the network is gone. *)

val blk_write : sector:int -> len:int -> tag:int -> unit
val blk_read : sector:int -> len:int -> int
(** Returns the sector's content tag.
    @raise Sys_error on storage failure. *)

val fs_create : string -> int
val fs_append : fd:int -> tag:int -> unit
val fs_read : fd:int -> index:int -> int
val exit : unit -> 'a

(** {1 Guest-kernel path costs}

    Cycles of in-kernel work per syscall, identical across ports so that
    measured differences isolate the hosting structure. *)

val kernel_work : gcall -> int
val block_size : int
(** 512 bytes — the FS and blk transfer unit. *)

(** {1 Vnet addressing (E17)}

    N mini-OS instances on one machine are addressed by vnet port via
    the packet tag: [tag = dst·10⁶ + src·10⁴ + seq]. The dst decode is
    the [tag / 10⁶] demux key the I/O stacks have always used, so
    vnet-tagged and NIC traffic share the routing plumbing. *)

val vnet_broadcast : int
(** Destination 0 floods to every attached port. *)

val vnet_max_port : int
(** Ports are 1..99 ([src] must not be 0). *)

val vnet_max_seq : int

val vnet_tag : src:int -> dst:int -> seq:int -> int
(** @raise Invalid_argument when a field is out of range. *)

val vnet_dst : int -> int
val vnet_src : int -> int
val vnet_seq : int -> int

(** {1 Port plumbing} *)

val run_with_handler : handler:(gcall -> gret) -> (unit -> unit) -> unit
(** Run an application under a syscall handler. Trampolined: each
    {!Gsys} suspends the app, the handler runs in the caller's context
    (free to perform hypercalls / IPC effects of the hosting layer), and
    the app resumes — without stacking a frame per syscall. [G_exit]
    terminates the app without resuming it. Application exceptions
    propagate to the caller. *)
