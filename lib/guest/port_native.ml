module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Frame = Vmk_hw.Frame
module Nic = Vmk_hw.Nic
module Disk = Vmk_hw.Disk
module Irq = Vmk_hw.Irq
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Accounts = Vmk_trace.Accounts

let account = "native"

type state = {
  mach : Machine.t;
  id_gsys : int;
  id_syscall : int;  (** Pre-resolved per-syscall counters (E21). *)
  tx_free : Frame.frame Queue.t;
  blk_free : Frame.frame Queue.t;
  rx_queue : (int * int) Queue.t; (* len, tag *)
  mutable fs : Minifs.t option;
}

let ack_pending_irqs st =
  let irq = st.mach.Machine.irq in
  List.iter
    (fun line -> if Irq.is_pending irq line then Irq.ack irq line)
    [ Machine.nic_irq; Machine.disk_irq ]

let pump_nic st =
  let nic = st.mach.Machine.nic in
  let rec drain_rx () =
    match Nic.rx_ready nic with
    | Some ev ->
        Machine.burn st.mach 900; (* driver rx path *)
        Queue.add (ev.Nic.len, ev.Nic.tag) st.rx_queue;
        Nic.post_rx_buffer nic ev.Nic.frame;
        drain_rx ()
    | None -> ()
  in
  let rec drain_tx () =
    match Nic.tx_done nic with
    | Some (frame, _) ->
        Machine.burn st.mach 700;
        Queue.add frame st.tx_free;
        drain_tx ()
    | None -> ()
  in
  drain_rx ();
  drain_tx ();
  ack_pending_irqs st

(* Wait for [f] to produce a value, idling the clock to the next device
   event when nothing is ready. Returns None when the event queue runs
   dry — there is nothing left that could satisfy the wait. *)
let rec wait_for st f =
  pump_nic st;
  match f () with
  | Some v -> Some v
  | None ->
      if Engine.idle_to_next st.mach.Machine.engine then wait_for st f
      else None

let syscall_overhead st call =
  let arch = st.mach.Machine.arch in
  Counter.incr_id st.mach.Machine.counters st.id_gsys;
  Counter.incr_id st.mach.Machine.counters st.id_syscall;
  Machine.burn st.mach
    (arch.Arch.fast_syscall_cost + arch.Arch.kernel_exit_cost
   + Sys.kernel_work call)

let do_net_send st ~len ~tag =
  match
    wait_for st (fun () -> Queue.take_opt st.tx_free)
  with
  | None -> Sys.G_error "no transmit buffer"
  | Some frame ->
      Machine.burn_copy st.mach ~bytes:len;
      Frame.set_tag frame tag;
      Nic.submit_tx st.mach.Machine.nic frame ~len;
      Sys.G_unit

let do_net_recv st =
  match wait_for st (fun () -> Queue.take_opt st.rx_queue) with
  | Some (len, tag) ->
      Machine.burn_copy st.mach ~bytes:len;
      Sys.G_data { len; tag }
  | None -> Sys.G_error "network idle: no traffic left"

let do_blk st op ~sector ~len ~tag =
  match Queue.take_opt st.blk_free with
  | None -> Sys.G_error "no block buffer"
  | Some frame -> (
      Frame.set_tag frame tag;
      Machine.burn_copy st.mach ~bytes:len;
      let id = Disk.submit st.mach.Machine.disk op ~sector ~frame ~bytes:len in
      let result =
        wait_for st (fun () ->
            match Disk.completed st.mach.Machine.disk with
            | Some request when request.Disk.id = id -> Some request
            | Some _ | None -> None)
      in
      ack_pending_irqs st;
      Queue.add frame st.blk_free;
      match result with
      | Some request when request.Disk.ok -> begin
          match op with
          | Disk.Read -> Sys.G_data { len; tag = frame.Frame.tag }
          | Disk.Write -> Sys.G_unit
        end
      | Some _ -> Sys.G_error "disk request failed"
      | None -> Sys.G_error "disk never completed")

let make_fs st =
  let read ~sector =
    match do_blk st Disk.Read ~sector ~len:Sys.block_size ~tag:0 with
    | Sys.G_data { tag; _ } -> Some tag
    | Sys.G_unit | Sys.G_int _ | Sys.G_bool _ | Sys.G_error _ -> None
  in
  let write ~sector ~tag =
    match do_blk st Disk.Write ~sector ~len:Sys.block_size ~tag with
    | Sys.G_unit -> true
    | Sys.G_data _ | Sys.G_int _ | Sys.G_bool _ | Sys.G_error _ -> false
  in
  Minifs.create ~read ~write ()

let get_fs st =
  match st.fs with
  | Some fs -> fs
  | None ->
      let fs = make_fs st in
      st.fs <- Some fs;
      fs

let handler st call =
  match call with
  | Sys.G_burn n ->
      Machine.burn st.mach n;
      Sys.G_unit
  | _ -> begin
      syscall_overhead st call;
      match call with
      | Sys.G_burn _ -> assert false
      | Sys.G_getpid -> Sys.G_int 1
      | Sys.G_yield ->
          pump_nic st;
          Sys.G_unit
      | Sys.G_net_send { len; tag } -> do_net_send st ~len ~tag
      | Sys.G_net_drain ->
          pump_nic st;
          Sys.G_unit
      | Sys.G_net_recv -> do_net_recv st
      | Sys.G_blk_write { sector; len; tag } ->
          do_blk st Disk.Write ~sector ~len ~tag
      | Sys.G_blk_read { sector; len } -> do_blk st Disk.Read ~sector ~len ~tag:0
      | Sys.G_fs_create name ->
          Sys.G_int (Minifs.open_or_create (get_fs st) name)
      | Sys.G_fs_append { fd; tag } ->
          Sys.G_bool (Minifs.append (get_fs st) ~fd ~tag)
      | Sys.G_fs_read { fd; index } -> begin
          match Minifs.read_block (get_fs st) ~fd ~index with
          | Some tag -> Sys.G_int tag
          | None -> Sys.G_error "fs read failed"
        end
      | Sys.G_exit -> Sys.G_unit
    end

let run mach ?(nic_buffers = 16) app =
  Accounts.switch_to mach.Machine.accounts account;
  let st =
    {
      mach;
      id_gsys = Counter.id mach.Machine.counters "gsys.count";
      id_syscall = Counter.id mach.Machine.counters "native.syscall";
      tx_free = Queue.create ();
      blk_free = Queue.create ();
      rx_queue = Queue.create ();
      fs = None;
    }
  in
  List.iter
    (fun f -> Queue.add f st.tx_free)
    (Frame.alloc_many mach.Machine.frames ~owner:account 16);
  List.iter
    (fun f -> Queue.add f st.blk_free)
    (Frame.alloc_many mach.Machine.frames ~owner:account 4);
  List.iter
    (fun f -> Nic.post_rx_buffer mach.Machine.nic f)
    (Frame.alloc_many mach.Machine.frames ~owner:account nic_buffers);
  Sys.run_with_handler ~handler:(handler st) app;
  Accounts.switch_to mach.Machine.accounts "idle"
