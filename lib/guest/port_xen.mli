(** Xen port: the mini-OS as a paravirtualised domain.

    Every system call enters through {!Vmk_vmm.Hcall.syscall_trap} — the
    trap-gate shortcut when valid, the VMM bounce otherwise (§3.2, E4) —
    then runs the same guest-kernel work as the other ports. I/O goes
    through netfront/blkfront to Dom0's backends.

    Returns a domain body for {!Vmk_vmm.Hypervisor.create_domain}. *)

val guest_body :
  Vmk_hw.Machine.t ->
  ?net:Vmk_vmm.Net_channel.t * Vmk_vmm.Hcall.domid ->
  ?blk:Vmk_vmm.Blk_channel.t * Vmk_vmm.Hcall.domid ->
  ?fast_syscall:bool ->
  ?glibc_tls:bool ->
  ?resilient:bool ->
  ?io_timeout:int64 ->
  ?on_ready:(unit -> unit) ->
  app:(unit -> unit) ->
  unit ->
  unit
(** [guest_body mach ~net:(chan, backend) ~blk:(chan, backend) ~app ()].
    [on_ready] fires after the frontends are connected, before the app
    starts — scenarios use it to open the traffic gate.
    [fast_syscall] (default true) registers the int80 trap-gate shortcut;
    [glibc_tls] (default false) loads a full-address-space GS descriptor
    before the app starts, invalidating the shortcut exactly as the
    paper's glibc observation describes.

    [io_timeout] (default 50M cycles) bounds each I/O wait; beyond it
    the app sees an error. With [resilient] (default false), a failed
    I/O — timeout or backend death — triggers recovery instead: probe
    the backend, reconnect against its restarted incarnation
    ({!Vmk_vmm.Blkfront.reconnect} generation handshake, fresh port
    re-registered on the mux), and retry with exponential backoff,
    bounded attempts. Counters: ["xen.retries"], ["xen.reconnects"],
    ["xen.gaveup"]. *)
