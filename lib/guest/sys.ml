type gcall =
  | G_burn of int
  | G_getpid
  | G_yield
  | G_net_send of { len : int; tag : int }
  | G_net_drain
  | G_net_recv
  | G_blk_write of { sector : int; len : int; tag : int }
  | G_blk_read of { sector : int; len : int }
  | G_fs_create of string
  | G_fs_append of { fd : int; tag : int }
  | G_fs_read of { fd : int; index : int }
  | G_exit

type gret =
  | G_unit
  | G_int of int
  | G_bool of bool
  | G_data of { len : int; tag : int }
  | G_error of string

type _ Effect.t += Gsys : gcall -> gret Effect.t

exception Sys_error of string

let invoke c = Effect.perform (Gsys c)

let expect_unit = function
  | G_unit | G_bool true -> ()
  | G_error e -> raise (Sys_error e)
  | G_bool false -> raise (Sys_error "operation failed")
  | G_int _ | G_data _ -> raise (Sys_error "unexpected return")

let expect_int = function
  | G_int n -> n
  | G_error e -> raise (Sys_error e)
  | G_unit | G_bool _ | G_data _ -> raise (Sys_error "unexpected return")

let burn n = expect_unit (invoke (G_burn n))
let getpid () = expect_int (invoke G_getpid)
let yield () = expect_unit (invoke G_yield)
let net_send ~len ~tag = expect_unit (invoke (G_net_send { len; tag }))
let net_drain () = expect_unit (invoke G_net_drain)

let net_recv () =
  match invoke G_net_recv with
  | G_data { len; tag } -> (len, tag)
  | G_error e -> raise (Sys_error e)
  | G_unit | G_int _ | G_bool _ -> raise (Sys_error "unexpected return")

let blk_write ~sector ~len ~tag =
  expect_unit (invoke (G_blk_write { sector; len; tag }))

let blk_read ~sector ~len =
  match invoke (G_blk_read { sector; len }) with
  | G_data { tag; _ } -> tag
  | G_error e -> raise (Sys_error e)
  | G_unit | G_int _ | G_bool _ -> raise (Sys_error "unexpected return")

let fs_create name = expect_int (invoke (G_fs_create name))
let fs_append ~fd ~tag = expect_unit (invoke (G_fs_append { fd; tag }))

let fs_read ~fd ~index =
  match invoke (G_fs_read { fd; index }) with
  | G_int tag -> tag
  | G_data { tag; _ } -> tag
  | G_error e -> raise (Sys_error e)
  | G_unit | G_bool _ -> raise (Sys_error "unexpected return")

let exit () =
  ignore (invoke G_exit);
  assert false

let block_size = 512

(* Vnet addressing (E17): the machine-wide demux convention extended
   with a source field — tag = dst·10⁶ + src·10⁴ + seq. The dst decode
   is the same [tag / 10⁶] key Dom0 and the L4 demux have always used,
   so vnet-tagged and plain traffic route through the same plumbing. *)

let vnet_broadcast = 0
let vnet_max_port = 99
let vnet_max_seq = 9_999

let vnet_tag ~src ~dst ~seq =
  if src < 1 || src > vnet_max_port then invalid_arg "vnet_tag: src";
  if dst < 0 || dst > vnet_max_port then invalid_arg "vnet_tag: dst";
  if seq < 0 || seq > vnet_max_seq then invalid_arg "vnet_tag: seq";
  (dst * 1_000_000) + (src * 10_000) + seq

let vnet_dst tag = tag / 1_000_000
let vnet_src tag = tag mod 1_000_000 / 10_000
let vnet_seq tag = tag mod 10_000

let run_with_handler ~handler body =
  let open Effect.Deep in
  let pending : (gcall * (gret, unit) continuation) option ref = ref None in
  let app_exn : exn option ref = ref None in
  match_with body ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> app_exn := Some e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Gsys call ->
              Some
                (fun (k : (a, unit) continuation) -> pending := Some (call, k))
          | _ -> None);
    };
  let rec pump () =
    match !pending with
    | None -> ()
    | Some (G_exit, _k) ->
        (* Never resumed; the fiber is abandoned. *)
        pending := None
    | Some (call, k) ->
        pending := None;
        (* A handler that raises Sys_error is a failing syscall, not a
           crashing kernel: surface it to the app as an error return. *)
        let result =
          try handler call with Sys_error message -> G_error message
        in
        continue k result;
        pump ()
  in
  pump ();
  match !app_exn with Some e -> raise e | None -> ()

let kernel_work = function
  | G_burn _ -> 0
  | G_getpid -> 120
  | G_yield -> 180
  | G_net_send _ -> 650
  | G_net_drain -> 200
  | G_net_recv -> 700
  | G_blk_write _ | G_blk_read _ -> 800
  | G_fs_create _ -> 450
  | G_fs_append _ | G_fs_read _ -> 500
  | G_exit -> 100
