open Hcall
module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Addr = Vmk_hw.Addr
module Frame = Vmk_hw.Frame
module Page_table = Vmk_hw.Page_table
module Mmu = Vmk_hw.Mmu
module Irq = Vmk_hw.Irq
module Tlb = Vmk_hw.Tlb
module Cache = Vmk_hw.Cache
module Segments = Vmk_hw.Segments
module Accounts = Vmk_trace.Accounts
module Counter = Vmk_trace.Counter
module Engine = Vmk_sim.Engine
module Cap = Vmk_cap.Cap

let vmm_account = "vmm"
let vmm_hole = Addr.range ~start:0xF000_0000 ~len:0x1000_0000

type chan_state =
  | Unbound of { allowed : domid }
  | Bound of { remote_dom : domid; remote_port : port }
  | Virq of int  (** Physical IRQ line routed to this port. *)
  | Xs_watch of string  (** XenStore watch on a path prefix. *)

type grant_entry = {
  g_frame : Frame.frame;
  g_to : domid;
  g_readonly : bool;
  mutable g_mapped_by : domid list;
}

type dom_state = Ready | Running | Blocked | Dead

type pt_mode =
  | Paravirt  (** Validated hypercalls update the real page table (Xen). *)
  | Shadow
      (** The guest writes its own table; the write traps and the VMM
          synchronises a shadow (full-virtualisation style). *)

type domain = {
  domid : domid;
  name : string;
  privileged : bool;
  weight : int;  (** Scheduler share (stride scheduling); default 256. *)
  pt_mode : pt_mode;
  mutable pass : int64;  (** Stride-scheduler virtual time. *)
  mutable state : dom_state;
  mutable cont : (hreply, unit) Effect.Deep.continuation option;
  mutable pending_reply : hreply;
  mutable body : (unit -> unit) option;
  ports : (port, chan_state) Hashtbl.t;
  pending_events : (port, unit) Hashtbl.t;
  grants : (gref, grant_entry) Hashtbl.t;
  space : Page_table.t;
  segments : Segments.t;
  mutable int80_direct : bool;
  mutable next_port : int;
  mutable next_gref : int;
  mutable block_token : int;
  mutable burn_left : int;
      (** Remaining guest computation, consumed one timeslice per
          dispatch so compute-bound domains cannot starve I/O domains
          (models timer preemption). *)
  mutable paused : bool;
      (** Excluded from scheduling; events accumulate (E20 quiesce). *)
  mutable log_dirty_on : bool;
  dirty : (int, unit) Hashtbl.t;
      (** Dirty-vpn set while log-dirty mode is armed (E20 pre-copy). *)
}

(* What drove the current capability teardown — decides which counter a
   dying mapping lands on (voluntary unmap vs revocation cascade vs
   domain death), E19. *)
type cap_ctx = Ctx_none | Ctx_unmap | Ctx_revoke | Ctx_kill of domid

(* Hot-path counter ids, interned once at {!create} so the per-packet
   and per-hypercall paths bump a preallocated array cell instead of
   hashing a string (E21). Cold events (domain lifecycle, xenstore,
   faults) keep the string API. *)
type hot_ids = {
  id_hypercall : int;
  id_upcall : int;
  id_evtchn_send : int;
  id_grant_map : int;
  id_grant_unmap : int;
  id_grant_copy : int;
  id_grant_transitive : int;
  id_page_flip : int;
  id_syscall_fast : int;
  id_syscall_bounce : int;
  id_pt_update : int;
  id_shadow_sync : int;
  id_world_switch : int;
  id_irq : int;
}

type t = {
  mach : Machine.t;
  ids : hot_ids;
  domains : (domid, domain) Hashtbl.t;
  irq_routes : (int, domid * port) Hashtbl.t;
  xenstore : (string, string) Hashtbl.t;
  mutable xs_watches : (string * domid * port) list;
      (** (path prefix, watcher, port to pend on writes underneath). *)
  mutable next_domid : int;
  mutable next_asid : int;
  mutable last_domid : domid;
  mutable grant_cap : int option;
      (** Machine-wide live-grant ceiling; [None] = unbounded. The
          grant-table-exhaustion fault lever (E15). *)
  caps : Cap.t;
      (** E19: every grant entry and every live grant mapping is backed
          by a capability; [grant_revoke] cascades through the
          derivation tree. *)
  grant_handles : (domid * gref, Cap.handle) Hashtbl.t;
      (** (granter, gref) -> grant capability. *)
  map_handles : (domid * domid * gref, Cap.handle) Hashtbl.t;
      (** (mapper, granter, gref) -> map capability; stacked
          [Hashtbl.add] bindings, one per live mapping instance. *)
  mapped_frame : (domid * int, Cap.handle) Hashtbl.t;
      (** (mapper, frame index) -> map capability — the transitive-grant
          lookup: a domain may re-grant a frame it holds mapped. *)
  mutable cap_ctx : cap_ctx;
}

type stop_reason = Idle | Condition | Dispatch_limit

let machine t = t.mach

let create mach =
  let c = mach.Machine.counters in
  {
    mach;
    ids =
      {
        id_hypercall = Counter.id c "vmm.hypercall";
        id_upcall = Counter.id c "vmm.upcall";
        id_evtchn_send = Counter.id c "vmm.evtchn_send";
        id_grant_map = Counter.id c "vmm.grant_map";
        id_grant_unmap = Counter.id c "vmm.grant_unmap";
        id_grant_copy = Counter.id c "vmm.grant_copy";
        id_grant_transitive = Counter.id c "vmm.grant_transitive";
        id_page_flip = Counter.id c "vmm.page_flip";
        id_syscall_fast = Counter.id c "vmm.syscall_fast";
        id_syscall_bounce = Counter.id c "vmm.syscall_bounce";
        id_pt_update = Counter.id c "vmm.pt_update";
        id_shadow_sync = Counter.id c "vmm.shadow_sync";
        id_world_switch = Counter.id c "vmm.world_switch";
        id_irq = Counter.id c "vmm.irq";
      };
    domains = Hashtbl.create 8;
    irq_routes = Hashtbl.create 8;
    xenstore = Hashtbl.create 32;
    xs_watches = [];
    next_domid = 0;
    next_asid = 1;
    last_domid = -1;
    grant_cap = None;
    caps =
      Cap.create ~counters:mach.Machine.counters
        ~burn:(fun c -> Machine.burn mach c)
        ();
    grant_handles = Hashtbl.create 64;
    map_handles = Hashtbl.create 64;
    mapped_frame = Hashtbl.create 64;
    cap_ctx = Ctx_none;
  }

let caps h = h.caps

let with_cap_ctx h ctx f =
  let saved = h.cap_ctx in
  h.cap_ctx <- ctx;
  Fun.protect ~finally:(fun () -> h.cap_ctx <- saved) f

let set_grant_cap h cap =
  (match cap with
  | Some c when c < 0 -> invalid_arg "Hypervisor.set_grant_cap"
  | Some _ | None -> ());
  h.grant_cap <- cap

let live_grants h =
  Hashtbl.fold (fun _ d acc -> acc + Hashtbl.length d.grants) h.domains 0

let find h domid = Hashtbl.find_opt h.domains domid

let find_alive h domid =
  match find h domid with
  | Some d when d.state <> Dead -> Some d
  | Some _ | None -> None

let ready h d reply =
  ignore h;
  match d.state with
  | Dead -> ()
  | Ready -> d.pending_reply <- reply
  | Running | Blocked ->
      d.pending_reply <- reply;
      d.state <- Ready

let create_domain h ~name ?(privileged = false) ?(weight = 256)
    ?(pt_mode = Paravirt) body =
  if weight < 1 then invalid_arg "Hypervisor.create_domain: weight < 1";
  let domid = h.next_domid in
  h.next_domid <- h.next_domid + 1;
  let asid = h.next_asid in
  h.next_asid <- h.next_asid + 1;
  let d =
    {
      domid;
      name;
      privileged;
      weight;
      pt_mode;
      pass = 0L;
      state = Ready;
      cont = None;
      pending_reply = R_unit;
      body = Some body;
      ports = Hashtbl.create 8;
      pending_events = Hashtbl.create 8;
      grants = Hashtbl.create 16;
      space = Page_table.create ~asid;
      segments = Segments.create ~user_limit:vmm_hole.Addr.start;
      int80_direct = false;
      next_port = 1;
      next_gref = 1;
      block_token = 0;
      burn_left = 0;
      paused = false;
      log_dirty_on = false;
      dirty = Hashtbl.create 32;
    }
  in
  Hashtbl.add h.domains domid d;
  Counter.incr h.mach.Machine.counters "vmm.domain_create";
  domid

let is_alive h domid = find_alive h domid <> None
let domain_name h domid = Option.map (fun d -> d.name) (find h domid)

(* --- driver-domain supervision --- *)

type supervisor = {
  mutable current : domid;
  mutable restarts : (int64 * domid) list;  (** Newest first. *)
  sup_stop : bool ref;
}

let supervised_domid s = s.current
let restarts s = List.rev s.restarts
let stop_supervisor s = s.sup_stop := true

let supervise h ~name ?(privileged = false) ?(weight = 256)
    ?(pt_mode = Paravirt) ~period ~make_body domid0 =
  let sup = { current = domid0; restarts = []; sup_stop = ref false } in
  let n = ref 0 in
  let engine = h.mach.Machine.engine in
  Engine.every engine period (fun () ->
      if !(sup.sup_stop) then false
      else begin
        if not (is_alive h sup.current) then begin
          incr n;
          let domid =
            create_domain h ~name ~privileged ~weight ~pt_mode
              (make_body ~restart:!n)
          in
          sup.current <- domid;
          sup.restarts <- (Engine.now engine, domid) :: sup.restarts;
          Counter.incr h.mach.Machine.counters "vmm.supervisor_restart"
        end;
        true
      end);
  sup

let domain_count h =
  Hashtbl.fold
    (fun _ d acc -> if d.state <> Dead then acc + 1 else acc)
    h.domains 0

let state_name h domid =
  match find h domid with
  | None -> "missing"
  | Some d -> (
      match d.state with
      | Ready -> "ready"
      | Running -> "running"
      | Blocked -> "blocked"
      | Dead -> "dead")

let pending_event_count h domid =
  match find h domid with
  | Some d -> Hashtbl.length d.pending_events
  | None -> 0

let is_paused h domid =
  match find h domid with Some d -> d.paused | None -> false

let dirty_count h domid =
  match find h domid with Some d -> Hashtbl.length d.dirty | None -> 0

let runnable_names h =
  Hashtbl.fold
    (fun _ d acc -> if d.state = Ready then d.name :: acc else acc)
    h.domains []
  |> List.sort compare

(* --- cost helpers --- *)

let vburn h cycles = Machine.burn h.mach cycles

let touch_region h region =
  vburn h
    (Cache.touch h.mach.Machine.icache ~region
       ~lines:(Costs.icache_lines_for region))

let hypercall_overhead h region =
  let arch = h.mach.Machine.arch in
  Counter.incr_id h.mach.Machine.counters h.ids.id_hypercall;
  vburn h (arch.Arch.trap_cost + Costs.hypercall_fixed + arch.Arch.kernel_exit_cost);
  touch_region h "vmm.hcall.dispatch";
  touch_region h region

(* --- events --- *)

let collect_events d =
  let ports = Hashtbl.fold (fun p () acc -> p :: acc) d.pending_events [] in
  Hashtbl.reset d.pending_events;
  List.sort compare ports

let wake_with_events h d =
  let ports = collect_events d in
  Counter.incr_id h.mach.Machine.counters h.ids.id_upcall;
  (* Upcall delivery executes on the woken domain's vcpu. Flattened
     account swap: a plain burn cannot raise. *)
  let acc = h.mach.Machine.accounts in
  let prev = Accounts.swap acc d.name in
  vburn h Costs.upcall;
  Accounts.restore acc prev;
  ready h d (R_block (Events ports))

let set_pending h (target : domain) port =
  Hashtbl.replace target.pending_events port ();
  match target.state with
  | Blocked when not target.paused -> wake_with_events h target
  | Blocked | Ready | Running | Dead -> ()

(* --- XenStore (the XenBus handshake registry) --- *)

let xs_prefix_matches ~prefix ~path =
  String.length path >= String.length prefix
  && String.sub path 0 (String.length prefix) = prefix

let do_xs_write h (path : string) value =
  Hashtbl.replace h.xenstore path value;
  Counter.incr h.mach.Machine.counters "vmm.xs_write";
  List.iter
    (fun (prefix, domid, port) ->
      if xs_prefix_matches ~prefix ~path then
        match find_alive h domid with
        | Some watcher -> set_pending h watcher port
        | None -> ())
    h.xs_watches

let do_xs_watch h (d : domain) prefix =
  let port = d.next_port in
  d.next_port <- d.next_port + 1;
  Hashtbl.replace d.ports port (Xs_watch prefix);
  h.xs_watches <- (prefix, d.domid, port) :: h.xs_watches;
  port

let do_evtchn_send h (src : domain) port =
  match Hashtbl.find_opt src.ports port with
  | Some (Bound { remote_dom; remote_port }) -> begin
      match find_alive h remote_dom with
      | Some target ->
          Counter.incr_id h.mach.Machine.counters h.ids.id_evtchn_send;
          vburn h Costs.evtchn_send;
          set_pending h target remote_port;
          R_unit
      | None -> R_error Dead_domain
    end
  | Some (Virq _) | Some (Unbound _) | Some (Xs_watch _) | None ->
      R_error Bad_port

(* --- grants --- *)

(* Capability object namespaces (E19): grant entries and grant mappings
   live in disjoint tagged integer spaces so the teardown hook can route
   each dying cap back to its mechanism. *)
let gobj_tag = 1 lsl 59
let mobj_tag = 1 lsl 58
let gobj ~granter ~gref = gobj_tag lor (granter lsl 24) lor gref

let mobj ~mapper ~granter ~gref =
  mobj_tag lor (mapper lsl 40) lor (granter lsl 24) lor gref

let rec remove_one x = function
  | [] -> []
  | y :: rest -> if y = x then rest else y :: remove_one x rest

(* Remove the stacked binding [key -> v], preserving the order of the
   other instances. *)
let remove_binding tbl key v =
  let vs = Hashtbl.find_all tbl key in
  List.iter (fun _ -> Hashtbl.remove tbl key) vs;
  List.iter (fun x -> if x <> v then Hashtbl.add tbl key x) (List.rev vs)

(* Revocation hook: fires once per dying capability, children-first.
   A map cap undoes one mapping instance (force-unmap: PTE work plus the
   context-dependent counter); a grant cap deletes its table entry — so
   a grant made from a mapped grant dies with its parent grant. *)
let cap_teardown h (info : Cap.info) ~depth =
  let counters = h.mach.Machine.counters in
  let obj = info.Cap.i_obj in
  if obj land mobj_tag <> 0 then begin
    let mapper = (obj lsr 40) land 0x3_FFFF
    and granter = (obj lsr 24) land 0xFFFF
    and gref = obj land 0xFF_FFFF in
    (match find h granter with
    | Some g -> (
        match Hashtbl.find_opt g.grants gref with
        | Some entry ->
            entry.g_mapped_by <- remove_one mapper entry.g_mapped_by;
            remove_binding h.mapped_frame
              (mapper, entry.g_frame.Frame.index)
              info.Cap.i_handle
        | None -> ())
    | None -> ());
    remove_binding h.map_handles (mapper, granter, gref) info.Cap.i_handle;
    vburn h h.mach.Machine.arch.Arch.pt_update_cost;
    match h.cap_ctx with
    | Ctx_unmap when depth = 0 -> Counter.incr counters "vmm.grant_unmap"
    | Ctx_kill dying when dying = mapper ->
        (* The dying domain's own mappings of peers' grants: the E18
           orphan-unmap sweep, now cap-driven. *)
        Counter.incr counters "vmm.grant_orphan_unmap"
    | Ctx_unmap | Ctx_revoke | Ctx_kill _ | Ctx_none ->
        Counter.incr counters "gnt.revoke_forced"
  end
  else if obj land gobj_tag <> 0 then begin
    let v = obj land lnot gobj_tag in
    let granter = v lsr 24 and gref = v land 0xFF_FFFF in
    (match find h granter with
    | Some g -> Hashtbl.remove g.grants gref
    | None -> ());
    Hashtbl.remove h.grant_handles (granter, gref);
    match h.cap_ctx with
    | (Ctx_revoke | Ctx_unmap | Ctx_kill _) when depth > 0 ->
        (* Transitive grant cut down by an ancestor's revocation. *)
        Counter.incr counters "gnt.revoke_forced"
    | Ctx_revoke | Ctx_unmap | Ctx_kill _ | Ctx_none -> ()
  end

let do_grant h (d : domain) ~to_dom ~frame ~readonly =
  (* E19: besides frames it owns outright, a domain may re-grant a frame
     it currently holds mapped through someone else's grant — the new
     grant's capability derives from the map cap, so it dies with it. *)
  let authority =
    if frame.Frame.owner = d.name then `Owner
    else
      match Hashtbl.find_opt h.mapped_frame (d.domid, frame.Frame.index) with
      | Some mh -> `Mapped mh
      | None -> `None
  in
  match authority with
  | `None -> R_error Permission_denied
  | (`Owner | `Mapped _) as authority ->
      if
        match h.grant_cap with
        | Some cap -> live_grants h >= cap
        | None -> false
      then begin
        Counter.incr h.mach.Machine.counters "vmm.grant_exhausted";
        vburn h Costs.grant_check;
        R_error Out_of_memory
      end
      else if
        (* Every grant mirrors a cap in the granter's table — fail
           closed at its quota before creating the grant entry. *)
        not (Cap.check_quota h.caps ~dom:d.domid ~n:1)
      then begin
        vburn h Costs.grant_check;
        R_error Out_of_memory
      end
      else begin
        let gref = d.next_gref in
        d.next_gref <- d.next_gref + 1;
        Hashtbl.add d.grants gref
          {
            g_frame = frame;
            g_to = to_dom;
            g_readonly = readonly;
            g_mapped_by = [];
          };
        let obj = gobj ~granter:d.domid ~gref in
        let handle =
          match authority with
          | `Owner -> Cap.mint h.caps ~dom:d.domid ~obj ~rights:Cap.r_full
          | `Mapped mh -> (
              Counter.incr_id h.mach.Machine.counters h.ids.id_grant_transitive;
              match
                Cap.derive h.caps ~dom:d.domid ~handle:mh ~to_dom:d.domid
                  ~obj ~rights:Cap.r_full
              with
              | Ok x -> x
              | Error (`No_cap | `Denied | `Quota) ->
                  Cap.mint h.caps ~dom:d.domid ~obj ~rights:Cap.r_full)
        in
        Hashtbl.replace h.grant_handles (d.domid, gref) handle;
        vburn h Costs.grant_check;
        R_gref gref
      end

let do_grant_map h (mapper : domain) ~dom ~gref =
  match find_alive h dom with
  | None -> R_error Dead_domain
  | Some granter -> begin
      match Hashtbl.find_opt granter.grants gref with
      | Some entry
        when entry.g_to = mapper.domid
             && not (Cap.check_quota h.caps ~dom:mapper.domid ~n:1) ->
          (* The mapping would mirror a cap in the mapper's table; at
             quota the map fails closed before touching the entry. *)
          vburn h Costs.grant_check;
          R_error Out_of_memory
      | Some entry when entry.g_to = mapper.domid ->
          entry.g_mapped_by <- mapper.domid :: entry.g_mapped_by;
          let arch = h.mach.Machine.arch in
          Counter.incr_id h.mach.Machine.counters h.ids.id_grant_map;
          vburn h
            (Costs.grant_check + arch.Arch.pt_update_cost
           + arch.Arch.page_map_cost);
          (* The mapping is a child capability of the grant: revoking the
             grant force-unmaps it. *)
          (match Hashtbl.find_opt h.grant_handles (granter.domid, gref) with
          | Some gh -> (
              let rights =
                Cap.r_read
                lor (if entry.g_readonly then 0 else Cap.r_write)
                lor Cap.r_derive lor Cap.r_revoke
              in
              match
                Cap.derive h.caps ~dom:granter.domid ~handle:gh
                  ~to_dom:mapper.domid
                  ~obj:
                    (mobj ~mapper:mapper.domid ~granter:granter.domid ~gref)
                  ~rights
              with
              | Ok mh ->
                  Hashtbl.add h.map_handles
                    (mapper.domid, granter.domid, gref)
                    mh;
                  Hashtbl.add h.mapped_frame
                    (mapper.domid, entry.g_frame.Frame.index)
                    mh
              | Error (`No_cap | `Denied | `Quota) -> ())
          | None -> ());
          R_frames [ entry.g_frame ]
      | Some _ -> R_error Permission_denied
      | None -> R_error Bad_gref
    end

let do_grant_unmap h (mapper : domain) ~dom ~gref =
  match find_alive h dom with
  | None -> R_unit (* granter died; nothing to unmap against *)
  | Some granter -> begin
      match Hashtbl.find_opt granter.grants gref with
      | Some entry -> (
          match
            Hashtbl.find_all h.map_handles (mapper.domid, granter.domid, gref)
          with
          | [] ->
              (* Cap-less legacy entry: flat bookkeeping. *)
              entry.g_mapped_by <-
                List.filter (fun id -> id <> mapper.domid) entry.g_mapped_by;
              Counter.incr_id h.mach.Machine.counters h.ids.id_grant_unmap;
              vburn h h.mach.Machine.arch.Arch.pt_update_cost;
              R_unit
          | handles ->
              with_cap_ctx h Ctx_unmap (fun () ->
                  List.iter
                    (fun mh ->
                      match
                        Cap.revoke h.caps ~dom:mapper.domid ~handle:mh
                          ~self:true ~on_revoke:(cap_teardown h)
                      with
                      | Ok _ | Error (`No_cap | `Denied) -> ())
                    handles);
              R_unit)
      | None -> R_error Bad_gref
    end

(* E19: revocation always succeeds — outstanding mappings (and grants
   made from them, transitively) are force-unmapped through the
   capability derivation tree instead of failing with Permission_denied. *)
let do_grant_revoke h (d : domain) gref =
  match Hashtbl.find_opt d.grants gref with
  | Some entry -> (
      if entry.g_mapped_by <> [] then
        Counter.incr h.mach.Machine.counters "vmm.grant_revoke_cascade";
      vburn h Costs.grant_check;
      match Hashtbl.find_opt h.grant_handles (d.domid, gref) with
      | Some gh ->
          with_cap_ctx h Ctx_revoke (fun () ->
              match
                Cap.revoke h.caps ~dom:d.domid ~handle:gh ~self:true
                  ~on_revoke:(cap_teardown h)
              with
              | Ok _ | Error (`No_cap | `Denied) -> ());
          R_unit
      | None ->
          Hashtbl.remove d.grants gref;
          R_unit)
  | None -> R_error Bad_gref

let do_grant_transfer h (d : domain) ~to_dom ~frame =
  if frame.Frame.owner <> d.name then R_error Permission_denied
  else
    match find_alive h to_dom with
    | None -> R_error Dead_domain
    | Some target ->
        let arch = h.mach.Machine.arch in
        Frame.transfer h.mach.Machine.frames frame ~to_:target.name;
        Counter.incr_id h.mach.Machine.counters h.ids.id_page_flip;
        (* The flip costs fixed bookkeeping plus two PTE updates and a TLB
           shootdown — independent of how many payload bytes the page
           carries. [CG05]'s central observation. *)
        vburn h
          (Costs.page_flip_fixed
          + (2 * arch.Arch.pt_update_cost)
          + arch.Arch.tlb_refill_cost);
        Tlb.flush_asid h.mach.Machine.tlb ~asid:(Page_table.asid d.space);
        R_unit

(* The netback receive flip: swap a filled local page for a page the peer
   offered through a transfer grant. One hypercall, one page flip. *)
let do_grant_exchange h (d : domain) ~dom ~gref ~give =
  if give.Frame.owner <> d.name then R_error Permission_denied
  else
    match find_alive h dom with
    | None -> R_error Dead_domain
    | Some granter -> begin
        match Hashtbl.find_opt granter.grants gref with
        | Some entry when entry.g_to = d.domid && entry.g_mapped_by = [] ->
            Hashtbl.remove granter.grants gref;
            (* The transfer grant is consumed: retire its capability. *)
            (match Hashtbl.find_opt h.grant_handles (granter.domid, gref) with
            | Some gh -> (
                match
                  Cap.revoke h.caps ~dom:granter.domid ~handle:gh ~self:true
                    ~on_revoke:(cap_teardown h)
                with
                | Ok _ | Error (`No_cap | `Denied) -> ())
            | None -> ());
            Frame.transfer h.mach.Machine.frames entry.g_frame ~to_:d.name;
            Frame.transfer h.mach.Machine.frames give ~to_:granter.name;
            Counter.incr_id h.mach.Machine.counters h.ids.id_page_flip;
            let arch = h.mach.Machine.arch in
            vburn h
              (Costs.page_flip_fixed
              + (4 * arch.Arch.pt_update_cost)
              + arch.Arch.tlb_refill_cost);
            Tlb.flush_asid h.mach.Machine.tlb
              ~asid:(Page_table.asid granter.space);
            Tlb.flush_asid h.mach.Machine.tlb ~asid:(Page_table.asid d.space);
            R_frames [ entry.g_frame ]
        | Some _ -> R_error Permission_denied
        | None -> R_error Bad_gref
      end

(* GNTTABOP_copy: validated copy into a granted page; the tag models the
   payload. *)
let do_grant_copy h (d : domain) ~dom ~gref ~bytes ~tag =
  if bytes < 0 || bytes > Addr.page_size then R_error (Not_virtualisable "size")
  else
    match find_alive h dom with
    | None -> R_error Dead_domain
    | Some granter -> begin
        match Hashtbl.find_opt granter.grants gref with
        | Some entry when entry.g_to = d.domid && not entry.g_readonly ->
            Counter.incr_id h.mach.Machine.counters h.ids.id_grant_copy;
            vburn h (Costs.grant_check + Arch.copy_cost h.mach.Machine.arch ~bytes);
            Frame.set_tag entry.g_frame tag;
            R_unit
        | Some _ -> R_error Permission_denied
        | None -> R_error Bad_gref
      end

(* --- guest syscall path (§3.2) --- *)

let shortcut_valid h (d : domain) =
  let arch = h.mach.Machine.arch in
  d.int80_direct && arch.Arch.has_trap_gates && arch.Arch.has_segmentation
  && Segments.live_segments_exclude d.segments vmm_hole

let do_syscall_trap h (d : domain) =
  let arch = h.mach.Machine.arch in
  if shortcut_valid h d then begin
    (* Straight into the guest kernel: the VMM never runs. *)
    Counter.incr_id h.mach.Machine.counters h.ids.id_syscall_fast;
    let acc = h.mach.Machine.accounts in
    let prev = Accounts.swap acc d.name in
    vburn h (arch.Arch.trap_cost + arch.Arch.kernel_exit_cost);
    Accounts.restore acc prev;
    R_syscall Fast_trap_gate
  end
  else begin
    (* Trap to the hypervisor, bounce into the guest kernel, return via
       the hypervisor again — the IPC-equivalent operation. *)
    Counter.incr_id h.mach.Machine.counters h.ids.id_syscall_bounce;
    vburn h
      (arch.Arch.trap_cost + Costs.syscall_bounce + arch.Arch.kernel_exit_cost
     + arch.Arch.trap_cost + arch.Arch.kernel_exit_cost);
    touch_region h "vmm.hcall.syscall_bounce";
    R_syscall Bounced
  end

(* --- domain death --- *)

let kill_domain_internal h (d : domain) =
  if d.state <> Dead then begin
    d.state <- Dead;
    d.cont <- None;
    d.body <- None;
    Hashtbl.reset d.pending_events;
    let lines =
      Hashtbl.fold
        (fun line (domid, _) acc -> if domid = d.domid then line :: acc else acc)
        h.irq_routes []
    in
    List.iter (Hashtbl.remove h.irq_routes) lines;
    h.xs_watches <-
      List.filter (fun (_, domid, _) -> domid <> d.domid) h.xs_watches;
    (* Grant-table ownership hygiene: a destroyed domain must not linger
       in the grant machinery. Mappings it still held of other domains'
       grants are force-unmapped so the granters can revoke and re-grant
       under the next backend generation (before E18 these entries leaked
       and the frontend's revoke failed forever with Permission_denied);
       its own table dies with it. E19 drives this through the capability
       layer first: tearing down every cap the domain owns force-unmaps
       its mappings (vmm.grant_orphan_unmap), cuts down peers' mappings
       of its grants and any grants derived from its mappings
       (gnt.revoke_forced). The flat sweep below remains as the fallback
       for cap-less legacy bookkeeping. *)
    with_cap_ctx h (Ctx_kill d.domid) (fun () ->
        ignore (Cap.revoke_dom h.caps ~dom:d.domid ~on_revoke:(cap_teardown h)));
    let orphans = ref 0 in
    Hashtbl.iter
      (fun _ peer ->
        if peer.domid <> d.domid then
          Hashtbl.iter
            (fun _ entry ->
              if List.mem d.domid entry.g_mapped_by then begin
                entry.g_mapped_by <-
                  List.filter (fun id -> id <> d.domid) entry.g_mapped_by;
                incr orphans
              end)
            peer.grants)
      h.domains;
    if !orphans > 0 then
      Counter.add h.mach.Machine.counters "vmm.grant_orphan_unmap" !orphans;
    Hashtbl.reset d.grants;
    Counter.incr h.mach.Machine.counters "vmm.domain_destroy"
  end

let kill_domain h domid =
  match find h domid with
  | Some d -> kill_domain_internal h d
  | None -> ()

(* --- hypercall dispatch --- *)

(* Hypervisor work performed on behalf of a hypercall runs on the calling
   domain's vcpu and is charged to it, as Xen's accounting does; only
   world switches and physical-IRQ routing land on the anonymous "vmm"
   account. (The old [caller_charged] wrapper was an identity whose only
   effect was allocating a closure per hypercall — E21 removed it.) *)

let handle_hypercall h (d : domain) call =
  match call with
  | _ when d.state = Dead ->
      (* Killed mid-burn by fault injection: abandoned at the next trap. *)
      ()
  | H_burn n ->
      (* Sliced across dispatches: see [timeslice]. *)
      d.burn_left <- max 0 n;
      ready h d R_unit
  | H_dom_id ->
      ( hypercall_overhead h "vmm.hcall.dispatch");
      ready h d (R_domid d.domid)
  | H_yield ->
      ( hypercall_overhead h "vmm.hcall.sched");
      ready h d R_unit
  | H_poll ->
      (
          hypercall_overhead h "vmm.hcall.evtchn";
          let ports = collect_events d in
          ready h d (R_block (Events ports)))
  | H_block { timeout } ->
      (
          hypercall_overhead h "vmm.hcall.sched";
          if Hashtbl.length d.pending_events > 0 then
            ready h d (R_block (Events (collect_events d)))
          else begin
            d.state <- Blocked;
            d.block_token <- d.block_token + 1;
            let token = d.block_token in
            match timeout with
            | Some cycles ->
                Engine.after h.mach.Machine.engine cycles (fun () ->
                    if d.state = Blocked && d.block_token = token then
                      ready h d (R_block Timed_out))
            | None -> ()
          end)
  | H_alloc_frames n ->
      (
          hypercall_overhead h "vmm.hcall.memory";
          if n <= 0 then ready h d (R_error Out_of_memory)
          else
            match Frame.alloc_many h.mach.Machine.frames ~owner:d.name n with
            | frames ->
                vburn h (n * h.mach.Machine.arch.Arch.page_map_cost);
                ready h d (R_frames frames)
            | exception Frame.Out_of_frames -> ready h d (R_error Out_of_memory))
  | H_evtchn_alloc_unbound allowed ->
      (
          hypercall_overhead h "vmm.hcall.evtchn";
          let port = d.next_port in
          d.next_port <- d.next_port + 1;
          Hashtbl.add d.ports port (Unbound { allowed });
          ready h d (R_port port))
  | H_evtchn_bind { remote_dom; remote_port } ->
      (
          hypercall_overhead h "vmm.hcall.evtchn";
          match find_alive h remote_dom with
          | None -> ready h d (R_error Dead_domain)
          | Some peer -> (
              match Hashtbl.find_opt peer.ports remote_port with
              | Some (Unbound { allowed }) when allowed = d.domid ->
                  let local = d.next_port in
                  d.next_port <- d.next_port + 1;
                  Hashtbl.replace d.ports local
                    (Bound { remote_dom; remote_port });
                  Hashtbl.replace peer.ports remote_port
                    (Bound { remote_dom = d.domid; remote_port = local });
                  ready h d (R_port local)
              | Some _ | None -> ready h d (R_error Bad_port)))
  | H_evtchn_send port ->
      (
          hypercall_overhead h "vmm.hcall.evtchn";
          ready h d (do_evtchn_send h d port))
  | H_irq_bind line ->
      (
          hypercall_overhead h "vmm.hcall.irq";
          if not d.privileged then ready h d (R_error Permission_denied)
          else if line < 0 || line >= Irq.lines h.mach.Machine.irq then
            ready h d (R_error Bad_port)
          else begin
            let port = d.next_port in
            d.next_port <- d.next_port + 1;
            Hashtbl.replace d.ports port (Virq line);
            Hashtbl.replace h.irq_routes line (d.domid, port);
            ready h d (R_port port)
          end)
  | H_gnttab_grant { to_dom; frame; readonly } ->
      (* Shared-memory grant-table write: no trap. *)
      ( ready h d (do_grant h d ~to_dom ~frame ~readonly))
  | H_gnttab_revoke gref ->
      ( ready h d (do_grant_revoke h d gref))
  | H_gnttab_map { dom; gref } ->
      (
          hypercall_overhead h "vmm.hcall.grant_map";
          ready h d (do_grant_map h d ~dom ~gref))
  | H_gnttab_unmap { dom; gref } ->
      (
          hypercall_overhead h "vmm.hcall.grant_map";
          ready h d (do_grant_unmap h d ~dom ~gref))
  | H_gnttab_transfer { to_dom; frame } ->
      (
          hypercall_overhead h "vmm.hcall.grant_transfer";
          ready h d (do_grant_transfer h d ~to_dom ~frame))
  | H_gnttab_exchange { dom; gref; give } ->
      (
          hypercall_overhead h "vmm.hcall.grant_transfer";
          ready h d (do_grant_exchange h d ~dom ~gref ~give))
  | H_gnttab_copy { dom; gref; bytes; tag } ->
      (
          hypercall_overhead h "vmm.hcall.grant_map";
          ready h d (do_grant_copy h d ~dom ~gref ~bytes ~tag))
  | H_pt_map { frame; vpn; writable } ->
      (
          let arch = h.mach.Machine.arch in
          (match d.pt_mode with
          | Paravirt ->
              hypercall_overhead h "vmm.hcall.pt";
              vburn h (Costs.pt_validate + arch.Arch.pt_update_cost)
          | Shadow ->
              (* The guest's native PTE write faults on the write-protected
                 page table; the VMM decodes it and updates both the guest
                 table and the shadow. *)
              Counter.incr_id h.mach.Machine.counters h.ids.id_shadow_sync;
              vburn h
                (arch.Arch.trap_cost + arch.Arch.kernel_exit_cost
               + Costs.shadow_sync
                + (2 * arch.Arch.pt_update_cost));
              touch_region h "vmm.hcall.pt");
          if frame.Frame.owner <> d.name then
            ready h d (R_error Permission_denied)
          else begin
            Page_table.map d.space ~vpn frame ~writable ~user:true;
            Counter.incr_id h.mach.Machine.counters h.ids.id_pt_update;
            ready h d R_unit
          end)
  | H_pt_unmap vpn ->
      (
          let arch = h.mach.Machine.arch in
          (match d.pt_mode with
          | Paravirt ->
              hypercall_overhead h "vmm.hcall.pt";
              vburn h (Costs.pt_validate + arch.Arch.pt_update_cost)
          | Shadow ->
              Counter.incr_id h.mach.Machine.counters h.ids.id_shadow_sync;
              vburn h
                (arch.Arch.trap_cost + arch.Arch.kernel_exit_cost
               + Costs.shadow_sync
                + (2 * arch.Arch.pt_update_cost));
              touch_region h "vmm.hcall.pt");
          ignore (Page_table.unmap d.space ~vpn);
          Tlb.invalidate h.mach.Machine.tlb ~asid:(Page_table.asid d.space) ~vpn;
          Counter.incr_id h.mach.Machine.counters h.ids.id_pt_update;
          ready h d R_unit)
  | H_pt_batch ops ->
      (
          let arch = h.mach.Machine.arch in
          let apply op =
            match op with
            | Pt_map { bframe; bvpn; bwritable } ->
                if bframe.Frame.owner = d.name then begin
                  Page_table.map d.space ~vpn:bvpn bframe ~writable:bwritable
                    ~user:true;
                  Counter.incr_id h.mach.Machine.counters h.ids.id_pt_update
                end
            | Pt_unmap vpn ->
                ignore (Page_table.unmap d.space ~vpn);
                Tlb.invalidate h.mach.Machine.tlb
                  ~asid:(Page_table.asid d.space) ~vpn;
                Counter.incr_id h.mach.Machine.counters h.ids.id_pt_update
          in
          (match d.pt_mode with
          | Paravirt ->
              (* One trap amortised over the whole batch. *)
              hypercall_overhead h "vmm.hcall.pt";
              List.iter
                (fun op ->
                  vburn h (Costs.pt_validate + arch.Arch.pt_update_cost);
                  apply op)
                ops
          | Shadow ->
              (* Native PTE writes cannot be batched: each one faults. *)
              List.iter
                (fun op ->
                  Counter.incr_id h.mach.Machine.counters h.ids.id_shadow_sync;
                  vburn h
                    (arch.Arch.trap_cost + arch.Arch.kernel_exit_cost
                   + Costs.shadow_sync
                    + (2 * arch.Arch.pt_update_cost));
                  touch_region h "vmm.hcall.pt";
                  apply op)
                ops);
          ready h d R_unit)
  | H_set_trap_table { int80_direct } ->
      (
          hypercall_overhead h "vmm.hcall.trap";
          d.int80_direct <- int80_direct;
          ready h d R_unit)
  | H_load_segment (sel, desc) ->
      (
          (* Paravirtualised descriptor update: a real hypercall. *)
          hypercall_overhead h "vmm.hcall.trap";
          vburn h h.mach.Machine.arch.Arch.segment_reload_cost;
          Segments.load d.segments sel desc;
          ready h d R_unit)
  | H_syscall_trap -> ready h d (do_syscall_trap h d)
  | H_xs_write { path; value } ->
      (
          hypercall_overhead h "vmm.hcall.dispatch";
          do_xs_write h path value;
          ready h d R_unit)
  | H_xs_read path ->
      (
          hypercall_overhead h "vmm.hcall.dispatch";
          ready h d (R_xs (Hashtbl.find_opt h.xenstore path)))
  | H_xs_rm path ->
      (
          hypercall_overhead h "vmm.hcall.dispatch";
          Hashtbl.remove h.xenstore path;
          ready h d R_unit)
  | H_xs_watch prefix ->
      (
          hypercall_overhead h "vmm.hcall.evtchn";
          ready h d (R_port (do_xs_watch h d prefix)))
  | H_dom_create { cd_name; cd_privileged; cd_weight; cd_body } ->
      (
          hypercall_overhead h "vmm.hcall.domctl";
          if not d.privileged then ready h d (R_error Permission_denied)
          else if cd_weight < 1 then
            ready h d (R_error (Not_virtualisable "weight"))
          else begin
            vburn h Costs.domain_build;
            let domid =
              create_domain h ~name:cd_name ~privileged:cd_privileged
                ~weight:cd_weight cd_body
            in
            ready h d (R_domid domid)
          end)
  | H_dom_alive domid ->
      (
          hypercall_overhead h "vmm.hcall.domctl";
          ready h d (R_bool (is_alive h domid)))
  | H_dom_pause domid ->
      (
          hypercall_overhead h "vmm.hcall.domctl";
          if not d.privileged then ready h d (R_error Permission_denied)
          else
            match find_alive h domid with
            | None -> ready h d (R_error Dead_domain)
            | Some target ->
                target.paused <- true;
                Counter.incr h.mach.Machine.counters "vmm.dom_pause";
                ready h d R_unit)
  | H_dom_unpause domid ->
      (
          hypercall_overhead h "vmm.hcall.domctl";
          if not d.privileged then ready h d (R_error Permission_denied)
          else
            match find_alive h domid with
            | None -> ready h d (R_error Dead_domain)
            | Some target ->
                target.paused <- false;
                (* Events that arrived while paused were parked; deliver
                   the accumulated batch now. *)
                if target.state = Blocked
                   && Hashtbl.length target.pending_events > 0
                then wake_with_events h target;
                ready h d R_unit)
  | H_log_dirty { ld_dom; ld_enable } ->
      (
          hypercall_overhead h "vmm.hcall.domctl";
          if not d.privileged then ready h d (R_error Permission_denied)
          else
            match find_alive h ld_dom with
            | None -> ready h d (R_error Dead_domain)
            | Some target ->
                (* Arming write-protects the domain's pages so first
                   writes trap; one PT sweep either way. *)
                vburn h h.mach.Machine.arch.Arch.pt_update_cost;
                target.log_dirty_on <- ld_enable;
                Hashtbl.reset target.dirty;
                ready h d R_unit)
  | H_dirty_read domid ->
      (
          hypercall_overhead h "vmm.hcall.domctl";
          if not d.privileged then ready h d (R_error Permission_denied)
          else
            match find_alive h domid with
            | None -> ready h d (R_error Dead_domain)
            | Some target ->
                let vpns =
                  List.sort compare
                    (Hashtbl.fold (fun v () acc -> v :: acc) target.dirty [])
                in
                Hashtbl.reset target.dirty;
                (* Harvest test-and-clears the bitmap and re-protects
                   each page for the next round. *)
                vburn h
                  (List.length vpns * h.mach.Machine.arch.Arch.pt_update_cost);
                ready h d (R_vpns vpns))
  | H_touch_page { tp_vpn; tp_write } ->
      (* The model's stand-in for a guest load/store: free while
         untracked, one protection-fault trap on the first write to a
         clean page while log-dirty is armed. *)
      if d.log_dirty_on && tp_write && not (Hashtbl.mem d.dirty tp_vpn)
      then begin
        Hashtbl.replace d.dirty tp_vpn ();
        Counter.incr h.mach.Machine.counters "vmm.logdirty_fault";
        let arch = h.mach.Machine.arch in
        Accounts.with_account h.mach.Machine.accounts vmm_account (fun () ->
            vburn h (arch.Arch.trap_cost + arch.Arch.pt_update_cost))
      end;
      ready h d R_unit
  | H_exit -> kill_domain_internal h d

(* --- fibers --- *)

let start_fiber h (d : domain) body =
  let open Effect.Deep in
  match_with body ()
    {
      retc = (fun () -> kill_domain_internal h d);
      exnc =
        (fun exn ->
          Counter.incr h.mach.Machine.counters "vmm.domain_crashed";
          Logs.debug (fun m ->
              m "vmm: domain %s crashed: %s" d.name (Printexc.to_string exn));
          kill_domain_internal h d);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Invoke call ->
              Some
                (fun (kont : (a, unit) continuation) ->
                  d.cont <- Some kont;
                  handle_hypercall h d call)
          | _ -> None);
    }

(* --- physical interrupt routing --- *)

let route_irqs h =
  let irq = h.mach.Machine.irq in
  for line = 0 to Irq.lines irq - 1 do
    if Irq.is_pending irq line && not (Irq.is_masked irq line) then
      match Hashtbl.find_opt h.irq_routes line with
      | Some (domid, port) -> begin
          match find_alive h domid with
          | Some d ->
              Irq.ack irq line;
              let arch = h.mach.Machine.arch in
              let acc = h.mach.Machine.accounts in
              let prev = Accounts.swap acc vmm_account in
              Counter.incr_id h.mach.Machine.counters h.ids.id_irq;
              vburn h
                (arch.Arch.irq_entry_cost + Costs.irq_route
               + arch.Arch.irq_eoi_cost);
              set_pending h d port;
              Accounts.restore acc prev
          | None -> Irq.ack irq line
        end
      | None -> ()
  done

(* --- scheduling --- *)

(* Stride scheduling (Waldspurger): among runnable domains pick the one
   with the smallest pass; advance its pass by stride x time consumed.
   Equal weights degrade to round-robin; a boosted driver domain (see
   ablation A5) gets a proportionally larger CPU share. *)
let stride_numerator = 1_000_000L

let pick h =
  let best = ref None in
  Hashtbl.iter
    (fun _ d ->
      if d.state = Ready && not d.paused then
        match !best with
        | Some b
          when Int64.compare b.pass d.pass < 0
               || (Int64.compare b.pass d.pass = 0 && b.domid <= d.domid) ->
            ()
        | Some _ | None -> best := Some d)
    h.domains;
  !best

let charge_pass h d ~cycles =
  ignore h;
  (* One pass unit per 1k cycles, scaled by 1/weight. *)
  let units = Int64.of_int (max 1 (Int64.to_int cycles / 1000)) in
  let stride = Int64.div stride_numerator (Int64.of_int d.weight) in
  d.pass <- Int64.add d.pass (Int64.mul stride units)

(* Timer-tick quantum: a compute burst longer than this is preempted and
   the domain re-enters the runnable set. *)
let timeslice = 5_000

(* Tickless fast-forward (E21): when the burning domain is the only
   runnable one, no unmasked interrupt is pending and no engine event
   falls due inside the burst, slicing it into quanta is pure overhead
   — every intermediate dispatch would pick the same domain again. In
   that case the whole whole-quantum part of the burst is consumed in
   one step. Only multiples of [timeslice] are fast-forwarded so the
   stride-scheduler pass arithmetic (one unit per 1k cycles, computed
   per dispatch) accumulates exactly as the sliced execution would —
   the bit-for-bit replay guard depends on it. *)
let sole_runnable h (d : domain) =
  let sole = ref true in
  Hashtbl.iter
    (fun _ o ->
      if o != d && o.state = Ready && not o.paused then sole := false)
    h.domains;
  !sole

let no_irq_pending h =
  let irq = h.mach.Machine.irq in
  let clear = ref true in
  for line = 0 to Irq.lines irq - 1 do
    if Irq.is_pending irq line && not (Irq.is_masked irq line) then
      clear := false
  done;
  !clear

let burst_quantum h (d : domain) =
  if d.burn_left < 2 * timeslice then min timeslice d.burn_left
  else begin
    let whole = d.burn_left - (d.burn_left mod timeslice) in
    let fits =
      Int64.compare
        (Int64.add (Machine.now h.mach) (Int64.of_int whole))
        (Engine.next_due_or h.mach.Machine.engine Int64.max_int)
      <= 0
    in
    if fits && sole_runnable h d && no_irq_pending h then begin
      Engine.note_burst h.mach.Machine.engine
        (Int64.of_int (whole - timeslice));
      whole
    end
    else min timeslice d.burn_left
  end

let dispatch h (d : domain) =
  let t0 = Machine.now h.mach in
  if d.domid <> h.last_domid then begin
    let arch = h.mach.Machine.arch in
    let acc = h.mach.Machine.accounts in
    let prev = Accounts.swap acc vmm_account in
    Counter.incr_id h.mach.Machine.counters h.ids.id_world_switch;
    vburn h arch.Arch.world_switch_cost;
    Mmu.switch_space h.mach d.space;
    Accounts.restore acc prev;
    h.last_domid <- d.domid
  end;
  d.state <- Running;
  Accounts.switch_to h.mach.Machine.accounts d.name;
  (if d.burn_left > 0 then begin
     let step = burst_quantum h d in
     Machine.burn h.mach step;
     d.burn_left <- d.burn_left - step;
     if d.state = Running then
       (* Still alive (fault injection may have killed it mid-burn). *)
       d.state <- Ready
   end
   else
     match d.body with
     | Some body ->
         d.body <- None;
         start_fiber h d body
     | None -> (
         match d.cont with
         | Some kont ->
             d.cont <- None;
             Effect.Deep.continue kont d.pending_reply
         | None -> kill_domain_internal h d));
  charge_pass h d ~cycles:(Int64.sub (Machine.now h.mach) t0)

let run ?until ?(max_dispatches = 10_000_000) h =
  let dispatches = ref 0 in
  let stop_requested () =
    match until with Some f -> f () | None -> false
  in
  let rec loop () =
    if stop_requested () then Condition
    else begin
      route_irqs h;
      match pick h with
      | Some d ->
          if !dispatches >= max_dispatches then Dispatch_limit
          else begin
            incr dispatches;
            dispatch h d;
            loop ()
          end
      | None ->
          if Engine.idle_to_next h.mach.Machine.engine then loop () else Idle
    end
  in
  let reason = loop () in
  Accounts.switch_to h.mach.Machine.accounts "idle";
  reason
