(** Guest-side paravirtual block driver.

    Synchronous read/write over the shared ring: grant the data buffer,
    push a request, notify, and wait (through the {!Evt_mux}) for the
    matching response. A timeout or a hypercall failure surfaces as
    [None]/[false] — how a guest discovers its storage service died
    (experiment E6). *)

type t

val connect :
  Blk_channel.t ->
  backend:Hcall.domid ->
  ?arch:Vmk_hw.Arch.profile ->
  ?buffers:int ->
  unit ->
  t
(** Frontend half of the handshake; [buffers] bounds in-flight requests
    (default 8). *)

val port : t -> Hcall.port
val pump : t -> unit
(** Drain ring responses (register on the mux: [Evt_mux.on mux (port t)
    (fun () -> pump t)]). *)

val read :
  t -> mux:Evt_mux.t -> sector:int -> bytes:int -> ?timeout:int64 -> unit ->
  int option
(** Synchronous read; returns the sector's content tag, [None] on
    timeout/backend death. *)

val write :
  t ->
  mux:Evt_mux.t ->
  sector:int ->
  bytes:int ->
  tag:int ->
  ?timeout:int64 ->
  unit ->
  bool

val requests_issued : t -> int
val backend_dead : t -> bool

val generation : t -> int
(** Reconnect generation: 0 for the original connection, then the
    backend's [key/gen] value after each successful {!reconnect}. *)

val probe : t -> bool
(** Liveness check: send a (harmless, spurious) notification to the
    backend; [Dead_domain] marks the frontend dead. Returns
    {!backend_dead}'s new value. *)

val reconnect : t -> ?timeout:int64 -> unit -> bool
(** Recover from a backend death against a restarted backend domain:
    drop all state shared with the corpse (ring slots, in-flight grants,
    unclaimed completions), wait for a [key/gen] strictly above our own,
    and redo the handshake under the [key/g<n>/] subtree with a fresh
    port pair. [false] on timeout. After [true], re-register {!port}
    (it changed) on the event mux. *)
