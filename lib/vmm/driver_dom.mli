(** Driver domains and the thin toolstack Dom0 (E18).

    The disaggregated Xen stack of [FHN+04]: instead of one monolithic
    Dom0 hosting every backend, each device class runs in its own small
    unprivileged-except-for-its-IRQ domain — a netback domain
    ({!net_name}), a blkback/storage domain ({!blk_name}), and the E17
    vnet bridge ({!Bridge}) — while Dom0 shrinks to a toolstack that
    only builds domains ({!Hcall.dom_create}) and restarts the ones that
    die. Because a domain's name is its cycle account, each driver
    domain is separately metered, which is what lets E18's TCB rerun
    (E10) price the storage path without the 2 MLoC legacy OS in it.

    Failure independence is the point: killing the netback domain takes
    the network path down and nothing else — the blkback domain, the
    bridge and every guest not using the NIC keep running, and the
    toolstack rebuilds the dead domain with a bumped generation so the
    E13 generation-keyed reconnect brings frontends back. *)

val net_name : string
(** ["netdrv"] — the netback driver domain's name and cycle account. *)

val blk_name : string
(** ["blkdrv"] — the blkback driver domain's name and cycle account. *)

val toolstack_name : string
(** ["toolstack"] — the thin Dom0's name and cycle account. *)

val service_body :
  Vmk_hw.Machine.t ->
  prefix:string ->
  ?connect_timeout:int64 ->
  ?generation:int ->
  ?net_admit:Vmk_overload.Overload.Token_bucket.t ->
  ?net_napi:int ->
  ?net_poll:int64 ->
  ?net:Net_channel.t list ->
  ?blk:Blk_channel.t list ->
  unit ->
  unit
(** The backend service core shared by {!Dom0.body} (prefix ["dom0"],
    both device classes) and the driver-domain bodies below (one class
    each): connect the backends, bind the device interrupts, multiplex
    events forever. [prefix] names the counters
    ([<prefix>.connect_dropped], [<prefix>.nic_events], [<prefix>.wakeups],
    [<prefix>.events], [<prefix>.poll_ticks], [<prefix>.rx_no_route]);
    the remaining parameters are as documented on {!Dom0.body}. *)

val net_body :
  Vmk_hw.Machine.t ->
  ?connect_timeout:int64 ->
  ?generation:int ->
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  ?napi:int ->
  ?poll:int64 ->
  net:Net_channel.t list ->
  unit ->
  unit
(** The netback driver domain: {!service_body} with prefix {!net_name}
    and no block channels. Needs [privileged] to bind the NIC line. *)

val blk_body :
  Vmk_hw.Machine.t ->
  ?connect_timeout:int64 ->
  ?generation:int ->
  blk:Blk_channel.t list ->
  unit ->
  unit
(** The blkback/storage driver domain: {!service_body} with prefix
    {!blk_name} and no net channels. Needs [privileged] to bind the
    disk line. *)

(** {1 The toolstack} *)

type spec = {
  ds_name : string;
  ds_privileged : bool;
      (** Driver domains need the IRQ-bind privilege; the bridge does
          not, but granting it is Xen's [irq = ...] config line, not a
          full Dom0. *)
  ds_weight : int;
  ds_make : restart:int -> unit -> unit;
      (** Body factory; [restart] is 0 for the first build and becomes
          the backend's reconnect generation after each rebuild. *)
}
(** What the toolstack knows about one driver domain. *)

val spec :
  name:string ->
  ?privileged:bool ->
  ?weight:int ->
  (restart:int -> unit -> unit) ->
  spec
(** Defaults: [privileged = true], [weight = 256]. *)

type t
(** Toolstack bookkeeping, shared with the host so experiments can look
    up current domids and restart history while the simulation runs. *)

val create : unit -> t

val stop : t -> unit
(** Ask the toolstack to exit at its next wakeup (so [Hypervisor.run]
    without [until] can still reach quiescence). *)

val restarts : t -> (string * int64) list
(** [(driver-domain name, virtual time)] of every rebuild, oldest
    first. *)

val domid : t -> string -> Hcall.domid option
(** Current domid of the named driver domain — frontends connect against
    this, and fault plans kill it. *)

val generation : t -> string -> int option
(** How many times the named driver domain has been rebuilt. *)

val built : t -> bool
(** Whether the toolstack has built its domains yet (it runs as a guest;
    callers must let the hypervisor schedule it first). *)

val toolstack_body :
  Vmk_hw.Machine.t ->
  t ->
  ?restart_limit:int * int64 ->
  period:int64 ->
  spec list ->
  unit ->
  unit
(** The thin Dom0: build every spec once, then poll liveness every
    [period] cycles ({!Hcall.dom_alive}) and rebuild dead driver domains
    with a bumped [restart] — the supervision loop of
    {!Hypervisor.supervise}, moved where it belongs architecturally:
    into a guest that holds no device, no backend state and no driver
    code. [restart_limit = (burst, window)] rate-limits rebuilds per
    driver domain: at most [burst] rebuilds inside any sliding [window]
    of virtual cycles; a rebuild beyond that is deferred (not dropped —
    the next poll after the window slides rebuilds) and counted under
    ["toolstack.rate_limited"]. Counters: ["toolstack.built"],
    ["toolstack.restart"]. Create with [privileged:true] (it must issue
    {!Hcall.dom_create}). *)
