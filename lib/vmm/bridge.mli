(** Dom0 software bridge: the Xen-style inter-guest path (E17).

    A Dom0-like privileged domain whose netbacks feed a
    {!Vmk_vnet.Vnet.Switch} instead of the physical NIC. Every
    inter-guest packet crosses Dom0 twice on the classic split-driver
    primitives:

    {ol
    {- sender netfront → tx ring → netback grant-maps the frame and
       hands it to the switch (forwarding cycles burn on Dom0's
       account), completing the transmit with the switch's ECN verdict
       on the response; and}
    {- after the event batch, switch port queues drain into the
       destination netbacks — grant flip/copy onto the receiver's rx
       ring plus an event-channel notify, exactly like NIC receive.}}

    This is the hop/transition budget the E17 comparison charges
    against the L4 direct-IPC path. *)

val name : string

val body :
  Vmk_hw.Machine.t ->
  ?connect_timeout:int64 ->
  ?generation:int ->
  ?net_admit:Vmk_overload.Overload.Token_bucket.t ->
  ?fair:Vmk_overload.Overload.Weighted_buckets.t ->
  ?mac_ttl:int64 ->
  ?flow_capacity:int ->
  ?port_capacity:int ->
  ?mark_at:int ->
  ?net:Net_channel.t list ->
  unit ->
  unit
(** Run the bridge domain's fiber: connect a netback per channel
    ([attach_nic:false] — pool frames stay local), register each
    frontend's demux key as a switch port, then serve events forever.
    [fair] installs per-sender weighted admission at the switch gate;
    [mark_at] arms the ECN watermark on every port queue;
    [net_admit] is the per-backend token-bucket gate (E15). Never
    returns; run it under the scenario's engine like {!Dom0.body}. *)
