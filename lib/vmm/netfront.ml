module Frame = Vmk_hw.Frame
module Arch = Vmk_hw.Arch
module Machine = Vmk_hw.Machine

type t = {
  chan : Net_channel.t;
  mutable backend : Hcall.domid;
  mutable my_port : Hcall.port;
  mutable generation : int;
  arch : Arch.profile;
  tx_free : Frame.frame Queue.t;
  tx_inflight : (Hcall.gref, Frame.frame) Hashtbl.t;
  rx_grants : (Hcall.gref, Frame.frame) Hashtbl.t;
  delivered : (int * int) Queue.t;
  mutable tx_acked : int;
  mutable rx_received : int;
  mutable rx_post_dropped : int;
      (** Receive-buffer posts rejected by a full rx ring — explicit
          back-pressure, not a silent leak (the grant is revoked). *)
  mutable ecn_pending : bool;
      (** A tx completion carried the bridge's congestion mark and the
          sender has not yet consumed it. *)
  mutable ecn_marks : int;
  mutable dead : bool;
}

let guard t f = try f () with Hcall.Hcall_error _ -> t.dead <- true
let notify t = guard t (fun () -> Hcall.evtchn_send t.my_port)

(* A rejected post used to leave the grant dangling; now the grant is
   revoked and the rejection counted — the frontend backs off and
   reposts on the next pump. *)
let unpost t gref =
  t.rx_post_dropped <- t.rx_post_dropped + 1;
  Hashtbl.remove t.rx_grants gref;
  try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ()

let post_rx_buffer t frame =
  match t.chan.Net_channel.mode with
  | Net_channel.Flip ->
      guard t (fun () ->
          let gref = Hcall.grant ~to_dom:t.backend ~frame ~readonly:false in
          Hashtbl.replace t.rx_grants gref frame;
          Hcall.burn Net_channel.ring_cost;
          if
            not
              (Ring.push_request t.chan.Net_channel.rx_ring
                 (Net_channel.Rx_post_flip { flip_gref = gref }))
          then unpost t gref)
  | Net_channel.Copy ->
      guard t (fun () ->
          let gref = Hcall.grant ~to_dom:t.backend ~frame ~readonly:false in
          Hashtbl.replace t.rx_grants gref frame;
          Hcall.burn Net_channel.ring_cost;
          if
            not
              (Ring.push_request t.chan.Net_channel.rx_ring
                 (Net_channel.Rx_post_copy { rx_gref = gref }))
          then unpost t gref)

let connect chan ~backend ?(arch = Arch.default) ?(rx_buffers = 32) () =
  let my_dom = Hcall.dom_id () in
  chan.Net_channel.front_dom <- Some my_dom;
  let offer = Hcall.evtchn_alloc_unbound backend in
  chan.Net_channel.offer_port <- Some offer;
  chan.Net_channel.front_port <- Some offer;
  let key = chan.Net_channel.key in
  Hcall.xs_write ~path:(key ^ "/frontend-dom") ~value:(string_of_int my_dom);
  Hcall.xs_write ~path:(key ^ "/frontend-port") ~value:(string_of_int offer);
  let t =
    {
      chan;
      backend;
      my_port = offer;
      generation = 0;
      arch;
      tx_free = Queue.create ();
      tx_inflight = Hashtbl.create 16;
      rx_grants = Hashtbl.create 32;
      delivered = Queue.create ();
      tx_acked = 0;
      rx_received = 0;
      rx_post_dropped = 0;
      ecn_pending = false;
      ecn_marks = 0;
      dead = false;
    }
  in
  List.iter
    (fun f -> Queue.add f t.tx_free)
    (Hcall.alloc_frames 16);
  (* Wait for the backend to bind — the XenBus handshake: watch the
     backend-port node and block until it appears. *)
  ignore (Hcall.xs_wait_for (key ^ "/backend-port"));
  List.iter (post_rx_buffer t) (Hcall.alloc_frames rx_buffers);
  notify t;
  t

(* A frontend rebuilt from migrated state (E20): the handle starts dead
   — the source's backend is unreachable from this machine — and keeps
   the source's generation, so the ordinary [reconnect] path below picks
   up the destination backend the moment it publishes a higher
   [key/gen]. Transmit frames come from the destination's reservation;
   in-flight ring state never survives migration (exactly-once delivery
   is the application's sequence numbers, as with any reconnect). *)
let restore chan ~generation ?(arch = Arch.default) () =
  let t =
    {
      chan;
      backend = -1;
      my_port = -1;
      generation;
      arch;
      tx_free = Queue.create ();
      tx_inflight = Hashtbl.create 16;
      rx_grants = Hashtbl.create 32;
      delivered = Queue.create ();
      tx_acked = 0;
      rx_received = 0;
      rx_post_dropped = 0;
      ecn_pending = false;
      ecn_marks = 0;
      dead = true;
    }
  in
  List.iter (fun f -> Queue.add f t.tx_free) (Hcall.alloc_frames 16);
  t

let port t = t.my_port

let app_copy t len =
  (* One copy between the driver buffer and the "application" — the
     guest-side per-byte cost of the I/O path. *)
  Hcall.burn (Arch.copy_cost t.arch ~bytes:len)

let pump t =
  let reposted = ref false in
  let rec drain_tx () =
    match Ring.pop_response t.chan.Net_channel.tx_ring with
    | Some { Net_channel.txr_gref; txr_mark } ->
        if txr_mark then begin
          t.ecn_pending <- true;
          t.ecn_marks <- t.ecn_marks + 1
        end;
        Hcall.burn Net_channel.ring_cost;
        (match Hashtbl.find_opt t.tx_inflight txr_gref with
        | Some frame ->
            Hashtbl.remove t.tx_inflight txr_gref;
            guard t (fun () -> Hcall.grant_revoke txr_gref);
            Queue.add frame t.tx_free
        | None -> ());
        t.tx_acked <- t.tx_acked + 1;
        drain_tx ()
    | None -> ()
  in
  let rec drain_rx () =
    match Ring.pop_response t.chan.Net_channel.rx_ring with
    | Some resp ->
        Hcall.burn Net_channel.ring_cost;
        (match resp with
        | Net_channel.Rx_flipped { full; len } ->
            app_copy t len;
            Queue.add (len, full.Frame.tag) t.delivered;
            t.rx_received <- t.rx_received + 1;
            (* The page is ours now; hand it straight back to keep the
               backend's pool stocked. *)
            post_rx_buffer t full;
            reposted := true
        | Net_channel.Rx_copied { rxr_gref; len } -> (
            match Hashtbl.find_opt t.rx_grants rxr_gref with
            | Some frame ->
                app_copy t len;
                Queue.add (len, frame.Frame.tag) t.delivered;
                t.rx_received <- t.rx_received + 1;
                Hcall.burn Net_channel.ring_cost;
                if
                  Ring.push_request t.chan.Net_channel.rx_ring
                    (Net_channel.Rx_post_copy { rx_gref = rxr_gref })
                then reposted := true
                else unpost t rxr_gref
            | None -> ()));
        drain_rx ()
    | None -> ()
  in
  drain_tx ();
  drain_rx ();
  if !reposted then notify t

let send t ~len ~tag =
  pump t;
  if t.dead then false
  else
    match Queue.take_opt t.tx_free with
    | None -> false
    | Some frame -> (
        Frame.set_tag frame tag;
        match Hcall.grant ~to_dom:t.backend ~frame ~readonly:true with
        | gref ->
            Hcall.burn Net_channel.ring_cost;
            if
              Ring.push_request t.chan.Net_channel.tx_ring
                { Net_channel.tx_gref = gref; tx_len = len }
            then begin
              Hashtbl.replace t.tx_inflight gref frame;
              notify t;
              true
            end
            else begin
              (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
              Queue.add frame t.tx_free;
              false
            end
        | exception Hcall.Hcall_error _ ->
            t.dead <- true;
            Queue.add frame t.tx_free;
            false)

let try_recv t = Queue.take_opt t.delivered

let recv_blocking t ?timeout () =
  let rec loop () =
    pump t;
    match try_recv t with
    | Some packet -> Some packet
    | None ->
        if t.dead then None
        else begin
          match Hcall.block ?timeout () with
          | Hcall.Events _ -> loop ()
          | Hcall.Timed_out ->
              pump t;
              try_recv t
          | exception Hcall.Hcall_error _ ->
              t.dead <- true;
              None
        end
  in
  loop ()

let tx_acked t = t.tx_acked
let tx_unacked t = Hashtbl.length t.tx_inflight
let rx_received t = t.rx_received
let rx_post_dropped t = t.rx_post_dropped

let take_ecn_mark t =
  let m = t.ecn_pending in
  t.ecn_pending <- false;
  m

let ecn_marks t = t.ecn_marks
let backend_dead t = t.dead
let generation t = t.generation

(* See {!Blkfront.probe}: spurious notify to a live backend,
   [Dead_domain] from a dead one. *)
let probe t =
  if not t.dead then begin
    try Hcall.evtchn_send t.my_port with Hcall.Hcall_error _ -> t.dead <- true
  end;
  t.dead

let reconnect t ?timeout ?(rx_buffers = 32) () =
  let key = t.chan.Net_channel.key in
  let rec drain : 'a. (unit -> 'a option) -> unit =
   fun pop -> match pop () with Some _ -> drain pop | None -> ()
  in
  drain (fun () -> Ring.pop_request t.chan.Net_channel.tx_ring);
  drain (fun () -> Ring.pop_response t.chan.Net_channel.tx_ring);
  drain (fun () -> Ring.pop_request t.chan.Net_channel.rx_ring);
  drain (fun () -> Ring.pop_response t.chan.Net_channel.rx_ring);
  Hashtbl.iter
    (fun gref frame ->
      (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
      Queue.add frame t.tx_free)
    t.tx_inflight;
  Hashtbl.reset t.tx_inflight;
  (* Receive buffers were offered to the corpse (flipped pages may even
     belong to it); revoke what we can and start from fresh frames. *)
  Hashtbl.iter
    (fun gref _frame ->
      try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ())
    t.rx_grants;
  Hashtbl.reset t.rx_grants;
  let newer v =
    match int_of_string_opt v with
    | Some g -> g > t.generation
    | None -> false
  in
  match Hcall.xs_wait_pred ?timeout (key ^ "/gen") newer with
  | None -> false
  | Some gen_s -> (
      let g = int_of_string gen_s in
      let sub path = Printf.sprintf "%s/g%d/%s" key g path in
      match Hcall.xs_read (sub "backend-dom") with
      | None -> false
      | Some back_s -> (
          let backend = int_of_string back_s in
          match Hcall.evtchn_alloc_unbound backend with
          | offer -> (
              let my_dom = Hcall.dom_id () in
              t.chan.Net_channel.front_dom <- Some my_dom;
              t.chan.Net_channel.offer_port <- Some offer;
              t.chan.Net_channel.front_port <- Some offer;
              t.backend <- backend;
              t.my_port <- offer;
              t.generation <- g;
              t.dead <- false;
              (* Fill the rx ring before announcing the frontend: the
                 instant the backend's handshake completes it drains the
                 NIC backlog that piled up during the outage, and
                 buffers posted after that drain would miss it — real
                 netfront likewise enters Connected only with a full rx
                 ring. *)
              List.iter (post_rx_buffer t) (Hcall.alloc_frames rx_buffers);
              Hcall.xs_write ~path:(sub "frontend-dom")
                ~value:(string_of_int my_dom);
              Hcall.xs_write ~path:(sub "frontend-port")
                ~value:(string_of_int offer);
              match Hcall.xs_wait_for ?timeout (sub "backend-port") with
              | None -> false
              | Some _ ->
                  notify t;
                  not t.dead)
          | exception Hcall.Hcall_error _ -> false))
