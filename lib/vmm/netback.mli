(** Dom0-side network backend.

    Owns the physical NIC on behalf of one frontend. The receive path is
    the heart of experiment E3: in {!Net_channel.Flip} mode the backend's
    per-packet work is constant (ring handling + one grant transfer),
    independent of packet size; in {!Net_channel.Copy} mode it grows with
    the byte count (grant map + copy + unmap). All of it is charged to
    Dom0's cycle account.

    Runs inside the Dom0 fiber; {!Dom0} routes NIC interrupts and channel
    events here. *)

type t

val connect :
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  ?fair:Vmk_overload.Overload.Weighted_buckets.t ->
  ?napi:int ->
  ?attach_nic:bool ->
  Net_channel.t ->
  Vmk_hw.Machine.t ->
  ?nic_buffers:int ->
  unit ->
  t
(** Backend half of the handshake. Spins (yielding) until the frontend
    has published its port, then binds, collects the frontend's initial
    buffer posts and stocks the NIC with [nic_buffers] receive buffers
    (default 16). [admit] installs a token-bucket admission gate on the
    receive path: packets beyond the rate are shed cheaply before the
    per-packet delivery work — the receive-livelock defense (E15).

    [napi] switches {!handle_nic} to NAPI-style hybrid service (E16): the
    first interrupt masks the NIC line, then poll rounds each drain up to
    [napi] packets at one [poll_batch_cost], admit them as one batch
    ({!Vmk_overload.Overload.Token_bucket.admit_n}) and push at most one
    event-channel notify per batch; the line is acknowledged and
    re-enabled only when a round comes back empty.

    [fair] adds a per-sender weighted fair-share gate behind [admit],
    keyed on the vnet source decoded from the packet tag
    (tag = dst·10⁶ + src·10⁴ + seq) — the E17 aggressor/victim
    isolation. Only meaningful for vnet-tagged traffic.

    [attach_nic:false] (bridge backends, E17) keeps pool frames local
    instead of posting them as physical-NIC receive buffers: this
    backend's receive side is fed by {!deliver_pkt}, its transmit side
    redirected with {!set_tx_handler}. *)

val connect_opt :
  ?timeout:int64 ->
  ?generation:int ->
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  ?fair:Vmk_overload.Overload.Weighted_buckets.t ->
  ?napi:int ->
  ?attach_nic:bool ->
  Net_channel.t ->
  Vmk_hw.Machine.t ->
  ?nic_buffers:int ->
  unit ->
  t option
(** Like {!connect} but with a bounded wait ([None] on timeout or bind
    failure). [generation > 0] runs the restarted-backend reconnect
    handshake under the [key/g<n>/] subtree — see {!Blkback.connect_opt}. *)

val port : t -> Hcall.port
val frontend : t -> Hcall.domid

val handle_event : t -> unit
(** Process frontend activity: transmit requests (grant-map + NIC submit)
    and replenished receive buffers. *)

val handle_nic : t -> unit
(** Drain the NIC assuming this is the only backend: deliver received
    packets to the frontend (flip or copy), complete transmissions,
    restock NIC buffers. With several backends, {!Dom0} drains the NIC
    itself and routes through {!deliver_rx}/{!complete_tx}/{!flush}
    (the demux path stays on per-packet interrupts). In NAPI mode
    ([napi] at connect) this is the hybrid poll loop described at
    {!connect}. *)

val demux_key : t -> int
(** The frontend's demux key: packets tagged [key·10⁶ + seq] are its. *)

val deliver_rx : t -> Vmk_hw.Nic.rx_event -> unit
(** Deliver one received packet to this backend's frontend. *)

val set_tx_handler : t -> (len:int -> tag:int -> bool) -> unit
(** Redirect transmits away from the physical NIC: {!handle_event}
    grant-maps each tx request, hands [~len ~tag] to the handler (the
    bridge's switch-forward), unmaps and completes the transmit
    immediately; the handler's boolean is bounced to the frontend as
    the ECN mark ({!Net_channel.tx_resp}[.txr_mark]). *)

val deliver_pkt : t -> len:int -> tag:int -> bool
(** Inject one packet into this backend's receive path without the
    physical NIC (the bridge drains switch ports through here). Runs
    the full admission/delivery pipeline on a pool frame; [true] when
    the packet reached the frontend's ring. *)

val rx_ready : t -> bool
(** The bridge's delivery gate: would {!deliver_pkt} land a packet on
    the frontend's ring right now (pool frame, response slot and a
    posted receive buffer all available)? Pumps pending frontend posts
    first. When [false] the bridge leaves packets queued at the switch
    port — real back-pressure that builds toward the ECN watermark —
    and resumes on the frontend's repost notify. *)

val complete_tx : t -> Vmk_hw.Frame.frame -> bool
(** Offer a completed transmit buffer; [true] if it was this backend's. *)

val flush : t -> unit
(** Restock the NIC from the pool and notify the frontend if anything was
    delivered since the last flush. *)

val rx_delivered : t -> int
val tx_forwarded : t -> int
val rx_dropped_nobuf : t -> int
(** Packets dropped because the frontend left the backend without
    buffers (copy mode) — back-pressure under overload. *)

val rx_shed : t -> int
(** Packets shed at the admission gate before delivery work. *)

val ring_drops : t -> int
(** Total ring-full rejections on this channel's two rings, both
    directions and both sides (the E15 itemization of what {!Ring}
    previously dropped silently). *)
