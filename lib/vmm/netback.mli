(** Dom0-side network backend.

    Owns the physical NIC on behalf of one frontend. The receive path is
    the heart of experiment E3: in {!Net_channel.Flip} mode the backend's
    per-packet work is constant (ring handling + one grant transfer),
    independent of packet size; in {!Net_channel.Copy} mode it grows with
    the byte count (grant map + copy + unmap). All of it is charged to
    Dom0's cycle account.

    Runs inside the Dom0 fiber; {!Dom0} routes NIC interrupts and channel
    events here. *)

type t

val connect :
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  ?napi:int ->
  Net_channel.t ->
  Vmk_hw.Machine.t ->
  ?nic_buffers:int ->
  unit ->
  t
(** Backend half of the handshake. Spins (yielding) until the frontend
    has published its port, then binds, collects the frontend's initial
    buffer posts and stocks the NIC with [nic_buffers] receive buffers
    (default 16). [admit] installs a token-bucket admission gate on the
    receive path: packets beyond the rate are shed cheaply before the
    per-packet delivery work — the receive-livelock defense (E15).

    [napi] switches {!handle_nic} to NAPI-style hybrid service (E16): the
    first interrupt masks the NIC line, then poll rounds each drain up to
    [napi] packets at one [poll_batch_cost], admit them as one batch
    ({!Vmk_overload.Overload.Token_bucket.admit_n}) and push at most one
    event-channel notify per batch; the line is acknowledged and
    re-enabled only when a round comes back empty. *)

val connect_opt :
  ?timeout:int64 ->
  ?generation:int ->
  ?admit:Vmk_overload.Overload.Token_bucket.t ->
  ?napi:int ->
  Net_channel.t ->
  Vmk_hw.Machine.t ->
  ?nic_buffers:int ->
  unit ->
  t option
(** Like {!connect} but with a bounded wait ([None] on timeout or bind
    failure). [generation > 0] runs the restarted-backend reconnect
    handshake under the [key/g<n>/] subtree — see {!Blkback.connect_opt}. *)

val port : t -> Hcall.port
val frontend : t -> Hcall.domid

val handle_event : t -> unit
(** Process frontend activity: transmit requests (grant-map + NIC submit)
    and replenished receive buffers. *)

val handle_nic : t -> unit
(** Drain the NIC assuming this is the only backend: deliver received
    packets to the frontend (flip or copy), complete transmissions,
    restock NIC buffers. With several backends, {!Dom0} drains the NIC
    itself and routes through {!deliver_rx}/{!complete_tx}/{!flush}
    (the demux path stays on per-packet interrupts). In NAPI mode
    ([napi] at connect) this is the hybrid poll loop described at
    {!connect}. *)

val demux_key : t -> int
(** The frontend's demux key: packets tagged [key·10⁶ + seq] are its. *)

val deliver_rx : t -> Vmk_hw.Nic.rx_event -> unit
(** Deliver one received packet to this backend's frontend. *)

val complete_tx : t -> Vmk_hw.Frame.frame -> bool
(** Offer a completed transmit buffer; [true] if it was this backend's. *)

val flush : t -> unit
(** Restock the NIC from the pool and notify the frontend if anything was
    delivered since the last flush. *)

val rx_delivered : t -> int
val tx_forwarded : t -> int
val rx_dropped_nobuf : t -> int
(** Packets dropped because the frontend left the backend without
    buffers (copy mode) — back-pressure under overload. *)

val rx_shed : t -> int
(** Packets shed at the admission gate before delivery work. *)

val ring_drops : t -> int
(** Total ring-full rejections on this channel's two rings, both
    directions and both sides (the E15 itemization of what {!Ring}
    previously dropped silently). *)
