(** Guest-side paravirtual network driver.

    Runs inside a guest domain's fiber. Transmits by granting the packet
    buffer to the backend and notifying over the event channel; receives
    by keeping the backend stocked with buffers (transferred pages in
    {!Net_channel.Flip} mode, granted pages in {!Net_channel.Copy} mode)
    and consuming responses. Every received payload is copied once into
    the "application" — the guest-side per-byte cost, kept distinct from
    Dom0's per-packet cost (experiment E3). *)

type t

val connect :
  Net_channel.t ->
  backend:Hcall.domid ->
  ?arch:Vmk_hw.Arch.profile ->
  ?rx_buffers:int ->
  unit ->
  t
(** Perform the frontend half of the handshake (publishes the unbound
    port, pre-posts [rx_buffers] receive buffers — default 32). Must be
    called from the guest fiber before the backend connects. [arch]
    prices the guest-side packet copies (default {!Vmk_hw.Arch.default});
    pass the machine's profile on other platforms. *)

val restore :
  Net_channel.t -> generation:int -> ?arch:Vmk_hw.Arch.profile -> unit -> t
(** Rebuild a frontend from migrated state on the destination machine
    (E20). The returned handle starts {!backend_dead} — the source's
    backend is gone — with the source's [generation], so the normal
    {!reconnect} path performs the handshake against the destination
    backend once it publishes a higher [key/gen]. Allocates fresh
    transmit frames from the caller's (destination) reservation. *)

val port : t -> Hcall.port
(** The frontend's event-channel port (to match against
    {!Hcall.block} results). *)

val pump : t -> unit
(** Drain ring responses in one batch: complete transmits, move received
    packets into the local queue, replenish backend buffers — then at most
    {e one} notify back to the backend, however many responses were
    reaped. One event from a NAPI-batched backend (E16) is thus answered
    with one pump, not a notify storm. Call after every event. *)

val send : t -> len:int -> tag:int -> bool
(** Queue one packet for transmission; [false] when the TX ring is full
    and after a pump there is still no room or no free buffer. *)

val try_recv : t -> (int * int) option
(** Pop a received [(len, tag)] if one is queued (after {!pump}). *)

val recv_blocking : t -> ?timeout:int64 -> unit -> (int * int) option
(** Block (via the scheduler) until a packet arrives; [None] on timeout
    or if the backend appears dead. Only usable when the net channel is
    the fiber's sole event source. *)

val tx_acked : t -> int
(** Transmit responses seen so far. *)

val tx_unacked : t -> int
(** Transmits still awaiting their completion response — what
    [Sys.net_drain] waits out before a sender may exit (a guest dying
    with requests in its tx ring strands them: the backend's grant map
    fails against the dead domain). *)

val rx_received : t -> int

val rx_post_dropped : t -> int
(** Receive-buffer posts rejected by a full rx ring. The grant is
    revoked on rejection, so nothing leaks; the frontend reposts on a
    later pump (E15 back-pressure, was a silent drop). *)

val take_ecn_mark : t -> bool
(** Consume the pending ECN congestion mark: [true] if any transmit
    completion since the last call carried the bridge's
    past-the-watermark bit ({!Net_channel.tx_resp}[.txr_mark]). The
    sender should back off before the destination starts dropping
    (E17). *)

val ecn_marks : t -> int
(** Total marked transmit completions seen. *)

val backend_dead : t -> bool
(** A send or notification failed with [Dead_domain]. *)

val generation : t -> int
(** Reconnect generation: 0 originally, the backend's [key/gen] after
    each successful {!reconnect}. *)

val probe : t -> bool
(** Liveness check via a spurious notification; returns the new
    {!backend_dead}. *)

val reconnect : t -> ?timeout:int64 -> ?rx_buffers:int -> unit -> bool
(** Recover against a restarted backend domain: drop state shared with
    the corpse, wait for [key/gen] above our own, redo the handshake
    under [key/g<n>/] and re-post [rx_buffers] fresh receive buffers.
    [false] on timeout. After [true], re-register {!port} on the mux. *)
