type domid = int
type port = int
type gref = int
type syscall_path = Fast_trap_gate | Bounced
type block_result = Events of port list | Timed_out

type pt_op =
  | Pt_map of { bframe : Vmk_hw.Frame.frame; bvpn : int; bwritable : bool }
  | Pt_unmap of int

type hcall =
  | H_burn of int
  | H_dom_id
  | H_yield
  | H_block of { timeout : int64 option }
  | H_poll
  | H_alloc_frames of int
  | H_evtchn_alloc_unbound of domid
  | H_evtchn_bind of { remote_dom : domid; remote_port : port }
  | H_evtchn_send of port
  | H_irq_bind of int
  | H_gnttab_grant of { to_dom : domid; frame : Vmk_hw.Frame.frame; readonly : bool }
  | H_gnttab_revoke of gref
  | H_gnttab_map of { dom : domid; gref : gref }
  | H_gnttab_unmap of { dom : domid; gref : gref }
  | H_gnttab_transfer of { to_dom : domid; frame : Vmk_hw.Frame.frame }
  | H_gnttab_exchange of {
      dom : domid;
      gref : gref;
      give : Vmk_hw.Frame.frame;
    }
  | H_gnttab_copy of { dom : domid; gref : gref; bytes : int; tag : int }
  | H_pt_map of { frame : Vmk_hw.Frame.frame; vpn : int; writable : bool }
  | H_pt_unmap of int
  | H_pt_batch of pt_op list
  | H_set_trap_table of { int80_direct : bool }
  | H_load_segment of Vmk_hw.Segments.selector * Vmk_hw.Segments.descriptor
  | H_syscall_trap
  | H_xs_write of { path : string; value : string }
  | H_xs_read of string
  | H_xs_rm of string
  | H_xs_watch of string
  | H_dom_create of {
      cd_name : string;
      cd_privileged : bool;
      cd_weight : int;
      cd_body : unit -> unit;
    }
  | H_dom_alive of domid
  | H_dom_pause of domid
  | H_dom_unpause of domid
  | H_log_dirty of { ld_dom : domid; ld_enable : bool }
  | H_dirty_read of domid
  | H_touch_page of { tp_vpn : int; tp_write : bool }
  | H_exit

type error =
  | Bad_port
  | Bad_gref
  | Permission_denied
  | Out_of_memory
  | Dead_domain
  | Not_virtualisable of string

type hreply =
  | R_unit
  | R_domid of domid
  | R_port of port
  | R_gref of gref
  | R_frames of Vmk_hw.Frame.frame list
  | R_block of block_result
  | R_syscall of syscall_path
  | R_xs of string option
  | R_bool of bool
  | R_vpns of int list
  | R_error of error

type _ Effect.t += Invoke : hcall -> hreply Effect.t

exception Hcall_error of error
exception Domain_killed

let invoke c = Effect.perform (Invoke c)

let expect_unit = function
  | R_unit -> ()
  | R_error e -> raise (Hcall_error e)
  | R_domid _ | R_port _ | R_gref _ | R_frames _ | R_block _ | R_syscall _
  | R_xs _ | R_bool _ | R_vpns _ ->
      raise (Hcall_error (Not_virtualisable "reply"))

let expect_port = function
  | R_port p -> p
  | R_error e -> raise (Hcall_error e)
  | R_unit | R_domid _ | R_gref _ | R_frames _ | R_block _ | R_syscall _
  | R_xs _ | R_bool _ | R_vpns _ ->
      raise (Hcall_error (Not_virtualisable "reply"))

let burn n = expect_unit (invoke (H_burn n))

let dom_id () =
  match invoke H_dom_id with
  | R_domid d -> d
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let yield () = expect_unit (invoke H_yield)

let block ?timeout () =
  match invoke (H_block { timeout }) with
  | R_block r -> r
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let poll () =
  match invoke H_poll with
  | R_block (Events ports) -> ports
  | R_block Timed_out -> []
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let alloc_frames n =
  match invoke (H_alloc_frames n) with
  | R_frames fs -> fs
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let evtchn_alloc_unbound peer = expect_port (invoke (H_evtchn_alloc_unbound peer))

let evtchn_bind ~remote_dom ~remote_port =
  expect_port (invoke (H_evtchn_bind { remote_dom; remote_port }))

let evtchn_send p = expect_unit (invoke (H_evtchn_send p))
let irq_bind line = expect_port (invoke (H_irq_bind line))

let grant ~to_dom ~frame ~readonly =
  match invoke (H_gnttab_grant { to_dom; frame; readonly }) with
  | R_gref g -> g
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let grant_revoke g = expect_unit (invoke (H_gnttab_revoke g))

let grant_map ~dom ~gref =
  match invoke (H_gnttab_map { dom; gref }) with
  | R_frames [ f ] -> f
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let grant_unmap ~dom ~gref = expect_unit (invoke (H_gnttab_unmap { dom; gref }))

let grant_transfer ~to_dom ~frame =
  expect_unit (invoke (H_gnttab_transfer { to_dom; frame }))

let grant_exchange ~dom ~gref ~give =
  match invoke (H_gnttab_exchange { dom; gref; give }) with
  | R_frames [ f ] -> f
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let grant_copy ~dom ~gref ~bytes ~tag =
  expect_unit (invoke (H_gnttab_copy { dom; gref; bytes; tag }))

let pt_map ~frame ~vpn ~writable =
  expect_unit (invoke (H_pt_map { frame; vpn; writable }))

let pt_unmap vpn = expect_unit (invoke (H_pt_unmap vpn))
let pt_batch ops = expect_unit (invoke (H_pt_batch ops))

let set_trap_table ~int80_direct =
  expect_unit (invoke (H_set_trap_table { int80_direct }))

let load_segment sel d = expect_unit (invoke (H_load_segment (sel, d)))

let syscall_trap () =
  match invoke H_syscall_trap with
  | R_syscall p -> p
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let xs_write ~path ~value = expect_unit (invoke (H_xs_write { path; value }))

let xs_read path =
  match invoke (H_xs_read path) with
  | R_xs v -> v
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let xs_rm path = expect_unit (invoke (H_xs_rm path))
let xs_watch path = expect_port (invoke (H_xs_watch path))

let dom_create ~name ?(privileged = false) ?(weight = 256) body =
  match
    invoke
      (H_dom_create
         { cd_name = name; cd_privileged = privileged; cd_weight = weight; cd_body = body })
  with
  | R_domid d -> d
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let dom_alive domid =
  match invoke (H_dom_alive domid) with
  | R_bool b -> b
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let dom_pause domid = expect_unit (invoke (H_dom_pause domid))
let dom_unpause domid = expect_unit (invoke (H_dom_unpause domid))

let log_dirty ~dom ~enable =
  expect_unit (invoke (H_log_dirty { ld_dom = dom; ld_enable = enable }))

let dirty_read dom =
  match invoke (H_dirty_read dom) with
  | R_vpns vpns -> vpns
  | R_error e -> raise (Hcall_error e)
  | _ -> raise (Hcall_error (Not_virtualisable "reply"))

let touch_page ~vpn ~write =
  expect_unit (invoke (H_touch_page { tp_vpn = vpn; tp_write = write }))

let xs_wait_for ?timeout path =
  let _port = xs_watch path in
  let rec wait () =
    match xs_read path with
    | Some v -> Some v
    | None -> (
        match block ?timeout () with
        | Events _ -> wait ()
        | Timed_out -> xs_read path)
  in
  wait ()

let xs_wait_pred ?timeout path pred =
  let _port = xs_watch path in
  let ok () =
    match xs_read path with Some v when pred v -> Some v | Some _ | None -> None
  in
  let rec wait () =
    match ok () with
    | Some v -> Some v
    | None -> (
        match block ?timeout () with
        | Events _ -> wait ()
        | Timed_out -> ok ())
  in
  wait ()

let exit () =
  ignore (invoke H_exit);
  assert false

let pp_error ppf = function
  | Bad_port -> Format.pp_print_string ppf "bad-port"
  | Bad_gref -> Format.pp_print_string ppf "bad-gref"
  | Permission_denied -> Format.pp_print_string ppf "permission-denied"
  | Out_of_memory -> Format.pp_print_string ppf "out-of-memory"
  | Dead_domain -> Format.pp_print_string ppf "dead-domain"
  | Not_virtualisable what -> Format.fprintf ppf "not-virtualisable(%s)" what
