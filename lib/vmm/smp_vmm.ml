module Machine = Vmk_hw.Machine
module Arch = Vmk_hw.Arch
module Engine = Vmk_sim.Engine
module Smp = Vmk_smp.Smp

type backend = Single_dom0 | Driver_domains | Fixed_domains of int

type config = {
  cores : int;
  backend : backend;
  guests : int;
  packets : int;
  packet_len : int;
  period : int64;
  app_cycles : int;
  coalesce : int;
      (** Interrupt-mitigation factor: 1 = every packet interrupts; [n]
          lets only every n-th packet pay the full IRQ-route entry, the
          rest arriving under the open hold-off window at poll cost
          (E16 composing with E14). *)
}

type result = {
  completed : int;
  wall : int64;
  mach : Machine.t;
  gnt_acquisitions : int;
  gnt_contended : int;
  gnt_spin : int64;
}

let netback_work = 400
let frontend_work = 300
let flip_batch = 16

let default ?(backend = Single_dom0) ~cores () =
  {
    cores;
    backend;
    guests = 8;
    packets = 640;
    packet_len = 512;
    period = 400L;
    app_cycles = 2_600;
    coalesce = 1;
  }

let split_count total parts i = (total / parts) + (if i < total mod parts then 1 else 0)

let run ?seed cfg =
  if cfg.cores < 1 then invalid_arg "Smp_vmm.run: cores";
  if cfg.guests < 1 then invalid_arg "Smp_vmm.run: guests";
  let mach = Machine.create ~cpus:cfg.cores ?seed () in
  let arch = mach.Machine.arch in
  let smp = Smp.create mach in
  let gnt_lock = Smp.lock_create smp ~name:"grant" in
  (* Backend layout: Single_dom0 serializes every page flip through one
     domain on core 0 (guests on the remaining cores); Driver_domains
     gives each core its own driver with a private grant table, leaving
     only the frame-ownership check under the shared lock. *)
  (match cfg.backend with
  | Fixed_domains n when n < 1 -> invalid_arg "Smp_vmm.run: Fixed_domains"
  | Fixed_domains _ | Single_dom0 | Driver_domains -> ());
  let ndrv, drv_cpu, guest_cpu =
    match cfg.backend with
    | Single_dom0 ->
        ( 1,
          (fun _ -> 0),
          fun i -> if cfg.cores = 1 then 0 else 1 + (i mod (cfg.cores - 1)) )
    | Driver_domains ->
        (cfg.cores, (fun d -> d mod cfg.cores), fun i -> i mod cfg.cores)
    | Fixed_domains n ->
        (* E18's deployment shape: a fixed fleet of driver domains
           (netdrv/blkdrv/bridge-sized) spread round-robin over the
           cores, however many cores there are. *)
        (n, (fun d -> d mod cfg.cores), fun i -> i mod cfg.cores)
  in
  let flip_cost = Costs.page_flip_fixed + (2 * arch.Arch.pt_update_cost) in
  let guest_count = Array.init cfg.guests (split_count cfg.packets cfg.guests) in
  let guest_drv i =
    match cfg.backend with
    | Single_dom0 -> 0
    | Driver_domains -> guest_cpu i mod ndrv
    | Fixed_domains _ -> i mod ndrv
  in
  let drv_quota = Array.make ndrv 0 in
  Array.iteri
    (fun i c -> drv_quota.(guest_drv i) <- drv_quota.(guest_drv i) + c)
    guest_count;
  let guest_tids =
    Array.init cfg.guests (fun i ->
        let count = guest_count.(i) in
        Smp.spawn smp
          ~name:(Printf.sprintf "guest%d" i)
          ~account:(Printf.sprintf "guest%d" i)
          ~cpu:(guest_cpu i)
          (fun () ->
            for _ = 1 to count do
              ignore (Smp.recv ());
              Smp.burn
                (Costs.upcall + frontend_work + cfg.app_cycles
                + Arch.copy_cost arch ~bytes:cfg.packet_len)
            done))
  in
  let drv_tids =
    Array.init ndrv (fun d ->
        let quota = drv_quota.(d) in
        let name =
          match cfg.backend with
          | Single_dom0 -> "dom0"
          | Driver_domains | Fixed_domains _ -> Printf.sprintf "drv%d" d
        in
        Smp.spawn smp ~name ~account:name ~cpu:(drv_cpu d) (fun () ->
            for n = 1 to quota do
              let dst = Smp.recv () in
              Smp.burn netback_work;
              (match cfg.backend with
              | Single_dom0 ->
                  (* Grant check + page flip, all under the global
                     grant-table lock. *)
                  Smp.locked gnt_lock ~cycles:(Costs.grant_check + flip_cost)
              | Driver_domains | Fixed_domains _ ->
                  (* Flip under the private per-domain table; only the
                     frame-ownership check hits the shared lock. *)
                  Smp.burn flip_cost;
                  Smp.locked gnt_lock ~cycles:Costs.grant_check);
              (* Flipped-out pages invalidated in batches. *)
              if n mod flip_batch = 0 then Smp.shootdown ~pages:flip_batch;
              Smp.send ~dst ~tag:dst ~cycles:Costs.evtchn_send
            done))
  in
  let sent = ref 0 in
  let coalesce = max 1 cfg.coalesce in
  Engine.every mach.Machine.engine cfg.period (fun () ->
      if !sent < cfg.packets then begin
        let g = !sent mod cfg.guests in
        (* With mitigation only every [coalesce]-th packet pays the full
           IRQ-route entry; the rest land under the open hold-off window
           and cost one poll-batch read. *)
        let irq_cost =
          if !sent mod coalesce = 0 then
            arch.Arch.irq_entry_cost + Costs.irq_route
          else arch.Arch.poll_batch_cost
        in
        incr sent;
        Smp.post smp ~irq_cost ~dst:drv_tids.(guest_drv g) guest_tids.(g);
        !sent < cfg.packets
      end
      else false);
  (match Smp.run smp with
  | Smp.Idle -> ()
  | Smp.Condition | Smp.Rounds -> ());
  {
    completed =
      Array.fold_left ( + ) 0
        (Array.mapi
           (fun i tid -> if Smp.is_done smp tid then guest_count.(i) else 0)
           guest_tids);
    wall = Machine.now mach;
    mach;
    gnt_acquisitions = Smp.lock_acquisitions gnt_lock;
    gnt_contended = Smp.lock_contended gnt_lock;
    gnt_spin = Smp.lock_spin_cycles gnt_lock;
  }
