module Frame = Vmk_hw.Frame
module Arch = Vmk_hw.Arch

type t = {
  chan : Blk_channel.t;
  mutable backend : Hcall.domid;
  arch : Arch.profile;
  free : Frame.frame Queue.t;
  inflight : (int, Hcall.gref * Frame.frame) Hashtbl.t;
  completed : (int, bool) Hashtbl.t;
  mutable my_port : Hcall.port;
  mutable generation : int;
  mutable next_id : int;
  mutable issued : int;
  mutable dead : bool;
}

let connect chan ~backend ?(arch = Arch.default) ?(buffers = 8) () =
  let my_dom = Hcall.dom_id () in
  chan.Blk_channel.front_dom <- Some my_dom;
  let offer = Hcall.evtchn_alloc_unbound backend in
  chan.Blk_channel.offer_port <- Some offer;
  chan.Blk_channel.front_port <- Some offer;
  let key = chan.Blk_channel.key in
  Hcall.xs_write ~path:(key ^ "/frontend-dom") ~value:(string_of_int my_dom);
  Hcall.xs_write ~path:(key ^ "/frontend-port") ~value:(string_of_int offer);
  let t =
    {
      chan;
      backend;
      arch;
      free = Queue.create ();
      inflight = Hashtbl.create 8;
      completed = Hashtbl.create 8;
      my_port = offer;
      generation = 0;
      next_id = 0;
      issued = 0;
      dead = false;
    }
  in
  List.iter (fun f -> Queue.add f t.free) (Hcall.alloc_frames buffers);
  (* Wait for the backend to bind before returning, so the first request's
     notification cannot hit an unbound port. *)
  ignore (Hcall.xs_wait_for (key ^ "/backend-port"));
  t

let port t = t.my_port

let pump t =
  let rec drain () =
    match Ring.pop_response t.chan.Blk_channel.ring with
    | Some { Blk_channel.r_id; ok } ->
        Hcall.burn Blk_channel.ring_cost;
        Hashtbl.replace t.completed r_id ok;
        drain ()
    | None -> ()
  in
  drain ()

let issue t ~op ~sector ~bytes ~tag_for_write =
  if t.dead then None
  else
    match Queue.take_opt t.free with
    | None -> None
    | Some frame -> (
        (match tag_for_write with
        | Some tag -> Frame.set_tag frame tag
        | None -> Frame.set_tag frame 0);
        let readonly = op = Blk_channel.Write in
        match Hcall.grant ~to_dom:t.backend ~frame ~readonly with
        | gref ->
            let id = t.next_id in
            t.next_id <- t.next_id + 1;
            Hcall.burn Blk_channel.ring_cost;
            if
              Ring.push_request t.chan.Blk_channel.ring
                { Blk_channel.id; op; sector; gref; bytes }
            then begin
              Hashtbl.replace t.inflight id (gref, frame);
              t.issued <- t.issued + 1;
              (try Hcall.evtchn_send t.my_port
               with Hcall.Hcall_error _ -> t.dead <- true);
              if t.dead then None else Some id
            end
            else begin
              (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
              Queue.add frame t.free;
              None
            end
        | exception Hcall.Hcall_error _ ->
            t.dead <- true;
            Queue.add frame t.free;
            None)

let finish t id =
  match Hashtbl.find_opt t.inflight id with
  | Some (gref, frame) ->
      Hashtbl.remove t.inflight id;
      (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
      Queue.add frame t.free;
      Some frame
  | None -> None

let await t ~mux ~id ~timeout =
  let arrived () = Hashtbl.mem t.completed id || t.dead in
  let ok = Evt_mux.wait mux ?timeout ~until:arrived () in
  if (not ok) || t.dead then begin
    ignore (finish t id);
    None
  end
  else begin
    let status = Hashtbl.find_opt t.completed id in
    Hashtbl.remove t.completed id;
    let frame = finish t id in
    match (status, frame) with
    | Some true, Some frame -> Some frame
    | _ -> None
  end

let read t ~mux ~sector ~bytes ?timeout () =
  pump t;
  match issue t ~op:Blk_channel.Read ~sector ~bytes ~tag_for_write:None with
  | None -> None
  | Some id -> (
      match await t ~mux ~id ~timeout with
      | Some frame ->
          (* Copy from the driver buffer to the application. *)
          Hcall.burn (Arch.copy_cost t.arch ~bytes);
          Some frame.Frame.tag
      | None -> None)

let write t ~mux ~sector ~bytes ~tag ?timeout () =
  pump t;
  Hcall.burn (Arch.copy_cost t.arch ~bytes);
  match
    issue t ~op:Blk_channel.Write ~sector ~bytes ~tag_for_write:(Some tag)
  with
  | None -> false
  | Some id -> await t ~mux ~id ~timeout <> None

let requests_issued t = t.issued
let backend_dead t = t.dead
let generation t = t.generation

(* A notification to a dead backend comes back [Dead_domain]; to a live
   one it is a harmless spurious event. The cheapest liveness check a
   frontend has. *)
let probe t =
  if not t.dead then begin
    try Hcall.evtchn_send t.my_port with Hcall.Hcall_error _ -> t.dead <- true
  end;
  t.dead

let reconnect t ?timeout () =
  let key = t.chan.Blk_channel.key in
  (* Abandon everything shared with the dead backend: stale ring slots,
     in-flight grants (revoke may fail while the corpse still maps the
     page — swallow it), and completions that will never be claimed. *)
  let rec drain_req () =
    match Ring.pop_request t.chan.Blk_channel.ring with
    | Some _ -> drain_req ()
    | None -> ()
  in
  let rec drain_resp () =
    match Ring.pop_response t.chan.Blk_channel.ring with
    | Some _ -> drain_resp ()
    | None -> ()
  in
  drain_req ();
  drain_resp ();
  Hashtbl.iter
    (fun _ (gref, frame) ->
      (try Hcall.grant_revoke gref with Hcall.Hcall_error _ -> ());
      Queue.add frame t.free)
    t.inflight;
  Hashtbl.reset t.inflight;
  Hashtbl.reset t.completed;
  let newer v =
    match int_of_string_opt v with
    | Some g -> g > t.generation
    | None -> false
  in
  match Hcall.xs_wait_pred ?timeout (key ^ "/gen") newer with
  | None -> false
  | Some gen_s -> (
      let g = int_of_string gen_s in
      let sub path = Printf.sprintf "%s/g%d/%s" key g path in
      match Hcall.xs_read (sub "backend-dom") with
      | None -> false
      | Some back_s -> (
          let backend = int_of_string back_s in
          match Hcall.evtchn_alloc_unbound backend with
          | offer -> (
              let my_dom = Hcall.dom_id () in
              t.chan.Blk_channel.front_dom <- Some my_dom;
              t.chan.Blk_channel.offer_port <- Some offer;
              t.chan.Blk_channel.front_port <- Some offer;
              Hcall.xs_write ~path:(sub "frontend-dom")
                ~value:(string_of_int my_dom);
              Hcall.xs_write ~path:(sub "frontend-port")
                ~value:(string_of_int offer);
              match Hcall.xs_wait_for ?timeout (sub "backend-port") with
              | None -> false
              | Some _ ->
                  t.backend <- backend;
                  t.my_port <- offer;
                  t.generation <- g;
                  t.dead <- false;
                  true)
          | exception Hcall.Hcall_error _ -> false))
