(** Xen-style VMM stack on an SMP machine.

    The E3 I/O-storm pipeline (NIC interrupt -> backend -> frontend
    upcall) rebuilt on {!Vmk_smp.Smp} with credit-style per-core vCPU
    scheduling, priced with the same {!Costs} constants as the
    single-CPU hypervisor. Two backend layouts probe [CG05]'s
    centralized-Dom0 bottleneck:
    {ul
    {- [Single_dom0]: every packet's grant check and page flip runs in
       one domain pinned to core 0 — adding guest cores cannot add
       backend capacity, so throughput plateaus at Dom0 saturation.}
    {- [Driver_domains]: a driver domain per core with private grant
       tables; only the frame-ownership check stays under the shared
       lock, so backends scale with cores (contention itemized in
       ["smp.spin"]).}
    {- [Fixed_domains n]: E18's deployment shape — a fixed fleet of [n]
       driver domains (the netdrv/blkdrv/bridge split) spread
       round-robin over the cores, private tables as above. Capacity
       tops out at [min n cores] busy backends, which is how the
       disaggregated stack tracks the multi-server L4 curve until the
       fleet itself saturates.}} *)

type backend = Single_dom0 | Driver_domains | Fixed_domains of int

type config = {
  cores : int;
  backend : backend;
  guests : int;
  packets : int;  (** Total packets injected, split across guests. *)
  packet_len : int;
  period : int64;  (** Arrival period — E14 keeps it saturating. *)
  app_cycles : int;  (** Per-packet application work in the guest. *)
  coalesce : int;
      (** Interrupt-mitigation factor (E16): 1 = one interrupt entry per
          packet; [n] charges the full entry to every n-th packet only,
          the rest arriving under the hold-off window at poll cost. *)
}

type result = {
  completed : int;  (** Packets fully consumed by finished guests. *)
  wall : int64;  (** Virtual time when the stack went idle. *)
  mach : Vmk_hw.Machine.t;  (** For counters and per-CPU accounts. *)
  gnt_acquisitions : int;
  gnt_contended : int;
  gnt_spin : int64;
}

val default : ?backend:backend -> cores:int -> unit -> config
(** The E14 workload: 8 guests, 640 packets of 512 bytes arriving every
    400 cycles, 2600 cycles of app work each. *)

val run : ?seed:int64 -> config -> result
(** Build a fresh machine with [cfg.cores] vCPUs, run the pipeline to
    completion. Deterministic per seed.

    @raise Invalid_argument when [cores] or [guests] < 1. *)
