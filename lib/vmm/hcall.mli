(** The hypervisor call interface — the VMM's primitive inventory.

    Where the microkernel funnels everything through IPC, the VMM exposes
    the §2.2 list of dedicated primitives: hypercalls for resource
    control, event channels for asynchronous notification, grant tables
    for memory sharing and transfer (page flipping), page-table updates,
    virtual interrupts, and the guest syscall trap paths. Each primitive
    carries its own security checks and its own code path — experiments
    E1 and E9 audit exactly that.

    Guest code runs as a per-domain fiber performing the single
    monomorphic effect {!Invoke}; the wrappers below are the
    "paravirtualised guest kernel" API. *)

type domid = int
type port = int
type gref = int

type syscall_path =
  | Fast_trap_gate
      (** Direct guest-user → guest-kernel via the int80 trap gate; the
          VMM is not involved. *)
  | Bounced
      (** Trap into the VMM, which re-injects into the guest kernel —
          one IPC-equivalent operation (§3.2). *)

type block_result =
  | Events of port list  (** Pending ports, cleared on return. *)
  | Timed_out

type pt_op =
  | Pt_map of { bframe : Vmk_hw.Frame.frame; bvpn : int; bwritable : bool }
  | Pt_unmap of int

type hcall =
  | H_burn of int  (** Guest computation; not a hypercall. *)
  | H_dom_id
  | H_yield
  | H_block of { timeout : int64 option }
      (** Deschedule until an event arrives (or the timeout elapses). *)
  | H_poll  (** Non-blocking: collect and clear pending events. *)
  | H_alloc_frames of int  (** Extend reservation by n frames. *)
  | H_evtchn_alloc_unbound of domid
      (** Create a port the given peer may bind to. *)
  | H_evtchn_bind of { remote_dom : domid; remote_port : port }
  | H_evtchn_send of port
  | H_irq_bind of int  (** Route a physical IRQ line to a fresh port
                           (driver domains only). *)
  | H_gnttab_grant of { to_dom : domid; frame : Vmk_hw.Frame.frame; readonly : bool }
      (** Writing one's own grant table is a shared-memory operation, not
          a trap: it costs table-maintenance cycles only. *)
  | H_gnttab_revoke of gref
  | H_gnttab_map of { dom : domid; gref : gref }
  | H_gnttab_unmap of { dom : domid; gref : gref }
  | H_gnttab_transfer of { to_dom : domid; frame : Vmk_hw.Frame.frame }
      (** Page flip: move the frame (and its contents) to [to_dom]. *)
  | H_gnttab_exchange of {
      dom : domid;
      gref : gref;  (** The peer's transfer-grant of an empty page. *)
      give : Vmk_hw.Frame.frame;  (** Own (filled) frame to hand over. *)
    }
      (** The netback receive flip: one hypercall swaps a filled local
          page against a page the peer offered — [give] becomes the
          peer's, the granted page becomes the caller's. This is the
          page-flip operation [CG05] counts. *)
  | H_gnttab_copy of { dom : domid; gref : gref; bytes : int; tag : int }
      (** Hypervisor-mediated copy into a granted page (GNTTABOP_copy):
          one trap, validation, and the byte movement — the copy-mode
          receive path of ablation A1. *)
  | H_pt_map of { frame : Vmk_hw.Frame.frame; vpn : int; writable : bool }
      (** Validated page-table update hypercall. *)
  | H_pt_unmap of int
  | H_pt_batch of pt_op list
      (** Batched page-table updates in one hypercall — Xen's multicall /
          writable-page-table amortisation. Under {!Hypervisor.Shadow}
          mode there is nothing to batch: each op still traps. *)
  | H_set_trap_table of { int80_direct : bool }
      (** Register the guest syscall entry; request the trap-gate
          shortcut. *)
  | H_load_segment of Vmk_hw.Segments.selector * Vmk_hw.Segments.descriptor
      (** Guest (application) segment reload — glibc TLS does this. *)
  | H_syscall_trap
      (** One guest-application system call enters the kernel; the VMM
          resolves which path it takes. *)
  | H_xs_write of { path : string; value : string }
      (** XenStore write (the XenBus handshake registry). Fires watches. *)
  | H_xs_read of string
  | H_xs_rm of string
  | H_xs_watch of string
      (** Register a watch on a path prefix; returns a fresh local port
          that goes pending whenever anything under the prefix is
          written. *)
  | H_dom_create of {
      cd_name : string;
      cd_privileged : bool;
      cd_weight : int;
      cd_body : unit -> unit;
    }
      (** Toolstack primitive (DOMCTL_createdomain + image build in one):
          allocate a fresh domain running [cd_body]. Privileged callers
          only — this is how the thin Dom0 of E18 constructs its driver
          domains instead of hosting their drivers itself. *)
  | H_dom_alive of domid
      (** Toolstack liveness probe: is the domain still undestroyed? *)
  | H_dom_pause of domid
      (** Deschedule the domain until unpaused (privileged; E20's
          stop-and-copy quiesce). Pending events accumulate. *)
  | H_dom_unpause of domid
  | H_log_dirty of { ld_dom : domid; ld_enable : bool }
      (** Arm/disarm log-dirty mode on a domain (privileged): the
          PT-virtualisation layer write-protects its pages, and each
          first write after arming (or after a {!dirty_read} harvest)
          traps once into the VMM to set the page's dirty bit — the
          shadow-mode trick pre-copy migration rides on. *)
  | H_dirty_read of domid
      (** Harvest-and-clear the domain's dirty bitmap (privileged).
          Returns the dirtied vpns and re-protects them, each paying a
          PT-update cycle charge. *)
  | H_touch_page of { tp_vpn : int; tp_write : bool }
      (** Guest memory access visible to the dirty tracker — the model's
          stand-in for a real load/store. Free when log-dirty is off;
          a write to a clean tracked page costs one protection-fault
          trap (counter ["vmm.logdirty_fault"]). *)
  | H_exit

type error =
  | Bad_port
  | Bad_gref
  | Permission_denied
  | Out_of_memory
  | Dead_domain
  | Not_virtualisable of string

type hreply =
  | R_unit
  | R_domid of domid
  | R_port of port
  | R_gref of gref
  | R_frames of Vmk_hw.Frame.frame list
  | R_block of block_result
  | R_syscall of syscall_path
  | R_xs of string option
  | R_bool of bool
  | R_vpns of int list  (** Dirty-bitmap harvest, ascending. *)
  | R_error of error

type _ Effect.t += Invoke : hcall -> hreply Effect.t

exception Hcall_error of error
(** Raised by the wrappers on [R_error]. *)

exception Domain_killed
(** Delivered into a domain the fault injector destroys. *)

(** {1 Guest-side wrappers} *)

val burn : int -> unit
val dom_id : unit -> domid
val yield : unit -> unit
val block : ?timeout:int64 -> unit -> block_result
val poll : unit -> port list
val alloc_frames : int -> Vmk_hw.Frame.frame list
val evtchn_alloc_unbound : domid -> port
val evtchn_bind : remote_dom:domid -> remote_port:port -> port
val evtchn_send : port -> unit
val irq_bind : int -> port
val grant : to_dom:domid -> frame:Vmk_hw.Frame.frame -> readonly:bool -> gref
(** Grant [to_dom] access to [frame]. The caller may be the frame's
    owner, or (E19) hold it mapped through someone else's grant — a
    transitive grant whose capability derives from the map cap, so it
    dies when the upstream grant is revoked
    (counter ["vmm.grant_transitive"]). *)

val grant_revoke : gref -> unit
(** Revoke one of the caller's grants. Since E19 this always succeeds:
    outstanding peer mappings — and grants they transitively made from
    those mappings — are force-unmapped through the capability
    derivation tree in the same pass (counters
    ["vmm.grant_revoke_cascade"], ["gnt.revoke_forced"]) instead of
    failing with [Permission_denied]. *)

val grant_map : dom:domid -> gref:gref -> Vmk_hw.Frame.frame
val grant_unmap : dom:domid -> gref:gref -> unit
val grant_transfer : to_dom:domid -> frame:Vmk_hw.Frame.frame -> unit

(** [grant_exchange] returns the taken (previously granted) frame. *)
val grant_exchange :
  dom:domid -> gref:gref -> give:Vmk_hw.Frame.frame -> Vmk_hw.Frame.frame

val grant_copy : dom:domid -> gref:gref -> bytes:int -> tag:int -> unit
val pt_map : frame:Vmk_hw.Frame.frame -> vpn:int -> writable:bool -> unit
val pt_unmap : int -> unit
val pt_batch : pt_op list -> unit
val set_trap_table : int80_direct:bool -> unit
val load_segment : Vmk_hw.Segments.selector -> Vmk_hw.Segments.descriptor -> unit
val syscall_trap : unit -> syscall_path

val xs_write : path:string -> value:string -> unit
val xs_read : string -> string option
val xs_rm : string -> unit
val xs_watch : string -> port

val dom_create :
  name:string -> ?privileged:bool -> ?weight:int -> (unit -> unit) -> domid
(** Build a domain (privileged callers only; defaults: unprivileged,
    weight 256). Returns the new domid.
    @raise Hcall_error [Permission_denied] from an unprivileged domain. *)

val dom_alive : domid -> bool
(** Liveness probe for a domain this toolstack built. *)

val dom_pause : domid -> unit
val dom_unpause : domid -> unit

val log_dirty : dom:domid -> enable:bool -> unit
(** Arm/disarm dirty-page tracking on [dom] (privileged callers only). *)

val dirty_read : domid -> int list
(** Harvest-and-clear [dom]'s dirty vpns, ascending (privileged). *)

val touch_page : vpn:int -> write:bool -> unit
(** Report a guest memory access to the dirty tracker. *)

val xs_wait_for : ?timeout:int64 -> string -> string option
(** Watch a path and block until it has a value (or the optional timeout
    elapses); the standard XenBus handshake step. Events for other ports
    received while waiting are lost to the caller — use before wiring an
    {!Evt_mux}, as drivers do during connect. *)

val xs_wait_pred : ?timeout:int64 -> string -> (string -> bool) -> string option
(** Like {!xs_wait_for} but blocks until the value satisfies the
    predicate — e.g. waiting for a backend's reconnect generation to
    exceed one's own. Same caveat about events for other ports. *)

val exit : unit -> 'a

val pp_error : Format.formatter -> error -> unit
