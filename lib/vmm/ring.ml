(* Preallocated circular slot buffers (E21): the old implementation put
   every request/response through a [Queue.t], allocating a list cell
   per push — on the bridge path that is four cells per forwarded
   packet. Each side is now a fixed ring of [capacity] slots, grabbed
   lazily on the first push (the element itself seeds the array, so no
   dummy value is needed for the polymorphic payload). Slots keep their
   last occupant alive after a pop — a bounded, deliberate leak, gone at
   the next wrap. *)
type 'a buf = {
  mutable slots : 'a array;  (** [[||]] until the first push. *)
  mutable head : int;  (** Index of the oldest element. *)
  mutable len : int;
}

type ('req, 'resp) t = {
  capacity : int;
  reqs : 'req buf;
  resps : 'resp buf;
  mutable req_total : int;
  mutable resp_total : int;
  mutable req_dropped : int;
  mutable resp_dropped : int;
  mutable limit : int option;
  mutable on_request_drop : unit -> unit;
  mutable on_response_drop : unit -> unit;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  {
    capacity;
    reqs = { slots = [||]; head = 0; len = 0 };
    resps = { slots = [||]; head = 0; len = 0 };
    req_total = 0;
    resp_total = 0;
    req_dropped = 0;
    resp_dropped = 0;
    limit = None;
    on_request_drop = (fun () -> ());
    on_response_drop = (fun () -> ());
  }

let capacity t = t.capacity

let effective_capacity t =
  match t.limit with None -> t.capacity | Some l -> min l t.capacity

let set_limit t limit =
  (match limit with
  | Some l when l < 1 -> invalid_arg "Ring.set_limit: limit < 1"
  | Some _ | None -> ());
  t.limit <- limit

let on_drop t f =
  t.on_request_drop <- f;
  t.on_response_drop <- f

let on_request_drop t f = t.on_request_drop <- f
let on_response_drop t f = t.on_response_drop <- f

let[@inline] buf_push b ~capacity x =
  if Array.length b.slots = 0 then b.slots <- Array.make capacity x;
  let i = b.head + b.len in
  let i = if i >= capacity then i - capacity else i in
  Array.unsafe_set b.slots i x;
  b.len <- b.len + 1

let[@inline] buf_pop b =
  if b.len = 0 then None
  else begin
    let x = Array.unsafe_get b.slots b.head in
    let h = b.head + 1 in
    b.head <- (if h >= Array.length b.slots then 0 else h);
    b.len <- b.len - 1;
    Some x
  end

let push_request t req =
  if t.reqs.len >= effective_capacity t then begin
    t.req_dropped <- t.req_dropped + 1;
    t.on_request_drop ();
    false
  end
  else begin
    buf_push t.reqs ~capacity:t.capacity req;
    t.req_total <- t.req_total + 1;
    true
  end

let pop_request t = buf_pop t.reqs

let push_response t resp =
  if t.resps.len >= effective_capacity t then begin
    t.resp_dropped <- t.resp_dropped + 1;
    t.on_response_drop ();
    false
  end
  else begin
    buf_push t.resps ~capacity:t.capacity resp;
    t.resp_total <- t.resp_total + 1;
    true
  end

let pop_response t = buf_pop t.resps
let requests_pending t = t.reqs.len
let responses_pending t = t.resps.len
let request_space t = max 0 (effective_capacity t - t.reqs.len)
let response_space t = max 0 (effective_capacity t - t.resps.len)
let requests_total t = t.req_total
let responses_total t = t.resp_total
let request_dropped_total t = t.req_dropped
let response_dropped_total t = t.resp_dropped
let dropped_total t = t.req_dropped + t.resp_dropped
