type ('req, 'resp) t = {
  capacity : int;
  reqs : 'req Queue.t;
  resps : 'resp Queue.t;
  mutable req_total : int;
  mutable resp_total : int;
  mutable req_dropped : int;
  mutable resp_dropped : int;
  mutable limit : int option;
  mutable on_request_drop : unit -> unit;
  mutable on_response_drop : unit -> unit;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  {
    capacity;
    reqs = Queue.create ();
    resps = Queue.create ();
    req_total = 0;
    resp_total = 0;
    req_dropped = 0;
    resp_dropped = 0;
    limit = None;
    on_request_drop = (fun () -> ());
    on_response_drop = (fun () -> ());
  }

let capacity t = t.capacity

let effective_capacity t =
  match t.limit with None -> t.capacity | Some l -> min l t.capacity

let set_limit t limit =
  (match limit with
  | Some l when l < 1 -> invalid_arg "Ring.set_limit: limit < 1"
  | Some _ | None -> ());
  t.limit <- limit

let on_drop t f =
  t.on_request_drop <- f;
  t.on_response_drop <- f

let on_request_drop t f = t.on_request_drop <- f
let on_response_drop t f = t.on_response_drop <- f

let push_request t req =
  if Queue.length t.reqs >= effective_capacity t then begin
    t.req_dropped <- t.req_dropped + 1;
    t.on_request_drop ();
    false
  end
  else begin
    Queue.add req t.reqs;
    t.req_total <- t.req_total + 1;
    true
  end

let pop_request t = Queue.take_opt t.reqs

let push_response t resp =
  if Queue.length t.resps >= effective_capacity t then begin
    t.resp_dropped <- t.resp_dropped + 1;
    t.on_response_drop ();
    false
  end
  else begin
    Queue.add resp t.resps;
    t.resp_total <- t.resp_total + 1;
    true
  end

let pop_response t = Queue.take_opt t.resps
let requests_pending t = Queue.length t.reqs
let responses_pending t = Queue.length t.resps
let request_space t = max 0 (effective_capacity t - Queue.length t.reqs)
let response_space t = max 0 (effective_capacity t - Queue.length t.resps)
let requests_total t = t.req_total
let responses_total t = t.resp_total
let request_dropped_total t = t.req_dropped
let response_dropped_total t = t.resp_dropped
let dropped_total t = t.req_dropped + t.resp_dropped
