(** Shared state of one netfront/netback pair.

    Stands in for the grant-mapped shared ring pages plus the xenstore
    handshake: the scenario builder creates a channel and hands it to both
    the guest (frontend) and Dom0 (backend) bodies. The [mode] selects the
    receive-path data movement — page flipping (Xen 2.x default, the
    [CG05] measurement) or copy into a granted buffer (ablation A1). *)

type rx_mode =
  | Flip  (** Backend transfers the packet-filled page to the guest. *)
  | Copy  (** Backend copies payload into a guest-granted buffer. *)

type tx_req = { tx_gref : Hcall.gref; tx_len : int }

type tx_resp = { txr_gref : Hcall.gref; txr_mark : bool }
(** [txr_mark] is the ECN congestion bit (E17): set when the bridge
    found the destination port's queue past its high watermark, so the
    sending frontend backs off before drops start. Always [false] on
    the physical-NIC path. *)

type rx_req =
  | Rx_post_flip of { flip_gref : Hcall.gref }
      (** Transfer-grant of an empty page the backend may exchange
          against a filled one. *)
  | Rx_post_copy of { rx_gref : Hcall.gref }

type rx_resp =
  | Rx_flipped of { full : Vmk_hw.Frame.frame; len : int }
  | Rx_copied of { rxr_gref : Hcall.gref; len : int }

type t = {
  mode : rx_mode;
  key : string;  (** XenStore directory for the connection handshake. *)
  tx_ring : (tx_req, tx_resp) Ring.t;
  rx_ring : (rx_req, rx_resp) Ring.t;
  mutable front_dom : Hcall.domid option;
  mutable offer_port : Hcall.port option;
      (** Unbound port the frontend published for the backend. *)
  mutable front_port : Hcall.port option;  (** = offer port once bound. *)
  mutable back_port : Hcall.port option;
  mutable demux_key : int;
      (** Packets whose [tag / 1_000_000] equals this key are for this
          frontend (the MAC address of the model). *)
}

val create : mode:rx_mode -> ?ring_size:int -> demux_key:int -> unit -> t
(** Default ring size 64 slots, Xen-like. *)

val ring_cost : int
(** Cycles a producer/consumer burns per ring slot access. *)
