module Frame = Vmk_hw.Frame
module Arch = Vmk_hw.Arch
module Machine = Vmk_hw.Machine
module Nic = Vmk_hw.Nic
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Overload = Vmk_overload.Overload

(* Per-packet backend work beyond the hypercalls: ring manipulation,
   demux, softirq bookkeeping. *)
let per_packet_work = 900
let per_tx_work = 700

(* Cost of shedding a packet at the admission gate: look at the header,
   consult the bucket, recycle the buffer. An order of magnitude cheaper
   than full delivery — the whole point of the livelock defense. *)
let shed_work = 120

(* Pre-resolved counter ids for the per-packet path (E21): interned once
   at connect, bumped via an array store instead of a string hash on
   every packet. Cold paths (handshake, teardown) stay string-keyed. *)
type hot_ids = {
  id_drop : int;
  id_ring_drop : int;
  id_ring_reject : int;
  id_tx_packets : int;
  id_rx_packets : int;
  id_rx_bytes : int;
  id_rx_ring_full : int;
  id_rx_nobuf : int;
  id_rx_shed : int;
  id_shed : int;
  id_txr_ring_full : int;
  id_mitig_reenable : int;
  id_mitig_poll_rounds : int;
}

let intern_hot_ids c =
  {
    id_drop = Counter.id c Overload.drop_counter;
    id_ring_drop = Counter.id c "overload.ring_drop.net";
    id_ring_reject = Counter.id c (Overload.ring_reject_prefix ^ "net");
    id_tx_packets = Counter.id c "netback.tx_packets";
    id_rx_packets = Counter.id c "netback.rx_packets";
    id_rx_bytes = Counter.id c "netback.rx_bytes";
    id_rx_ring_full = Counter.id c "netback.rx_ring_full";
    id_rx_nobuf = Counter.id c "netback.rx_nobuf";
    id_rx_shed = Counter.id c "netback.rx_shed";
    id_shed = Counter.id c Overload.shed_counter;
    id_txr_ring_full = Counter.id c "netback.txr_ring_full";
    id_mitig_reenable = Counter.id c Overload.mitig_reenable_counter;
    id_mitig_poll_rounds = Counter.id c Overload.mitig_poll_rounds_counter;
  }

type t = {
  chan : Net_channel.t;
  mach : Machine.t;
  ids : hot_ids;
  front : Hcall.domid;
  my_port : Hcall.port;
  pool : Frame.frame Queue.t;  (** Dom0-owned buffers for NIC posting. *)
  flip_posts : Hcall.gref Queue.t;
  copy_grants : Hcall.gref Queue.t;
  tx_pending : (int, Hcall.gref) Hashtbl.t;  (** frame index -> gref *)
  nic_target : int;
  admit : Overload.Token_bucket.t option;
      (** Rx admission gate; [None] admits everything (naive). *)
  fair : Overload.Weighted_buckets.t option;
      (** Per-sender fair-share gate, keyed on the vnet source decoded
          from the packet tag; [None] skips it. *)
  napi : int option;
      (** NAPI poll budget; [None] keeps the interrupt-per-packet path. *)
  attach_nic : bool;
      (** Bridge backends ([false]) keep their pool frames instead of
          posting them to the unused physical NIC. *)
  mutable tx_handler : (len:int -> tag:int -> bool) option;
      (** When set, transmits are handed here (the Dom0 bridge) instead
          of the physical NIC, completing immediately; the handler's
          result is bounced to the frontend as the ECN mark. *)
  mutable rx_delivered : int;
  mutable tx_forwarded : int;
  mutable dropped_nobuf : int;
  mutable rx_shed : int;
  mutable dirty : bool;  (** Responses pushed since the last notify. *)
}

let restock_nic t =
  if t.attach_nic then
    while
      Nic.rx_buffers_posted t.mach.Machine.nic < t.nic_target
      && not (Queue.is_empty t.pool)
    do
      Nic.post_rx_buffer t.mach.Machine.nic (Queue.take t.pool)
    done

let pump_frontend_posts t =
  let rec drain () =
    match Ring.pop_request t.chan.Net_channel.rx_ring with
    | Some (Net_channel.Rx_post_flip { flip_gref }) ->
        Hcall.burn Net_channel.ring_cost;
        Queue.add flip_gref t.flip_posts;
        drain ()
    | Some (Net_channel.Rx_post_copy { rx_gref }) ->
        Hcall.burn Net_channel.ring_cost;
        Queue.add rx_gref t.copy_grants;
        drain ()
    | None -> ()
  in
  drain ();
  restock_nic t

(* XenBus handshake; see {!Blkback.connect_opt} for the generation
   scheme shared by both backends. *)
let connect_opt ?timeout ?(generation = 0) ?admit ?fair ?napi
    ?(attach_nic = true) chan mach ?(nic_buffers = 16) () =
  let key = chan.Net_channel.key in
  let sub path =
    if generation = 0 then key ^ "/" ^ path
    else Printf.sprintf "%s/g%d/%s" key generation path
  in
  if generation > 0 then begin
    Hcall.xs_write ~path:(sub "backend-dom")
      ~value:(string_of_int (Hcall.dom_id ()));
    Hcall.xs_write ~path:(key ^ "/gen") ~value:(string_of_int generation)
  end;
  match Hcall.xs_wait_for ?timeout (sub "frontend-dom") with
  | None -> None
  | Some front_s -> (
      match Hcall.xs_wait_for ?timeout (sub "frontend-port") with
      | None -> None
      | Some offer_s -> (
          let front = int_of_string front_s in
          let offer = int_of_string offer_s in
          match Hcall.evtchn_bind ~remote_dom:front ~remote_port:offer with
          | my_port ->
              chan.Net_channel.back_port <- Some my_port;
              Hcall.xs_write ~path:(sub "backend-port")
                ~value:(string_of_int my_port);
              let ids = intern_hot_ids mach.Machine.counters in
              let t =
                {
                  chan;
                  mach;
                  ids;
                  front;
                  my_port;
                  pool = Queue.create ();
                  flip_posts = Queue.create ();
                  copy_grants = Queue.create ();
                  tx_pending = Hashtbl.create 32;
                  nic_target = nic_buffers;
                  admit;
                  fair;
                  napi;
                  attach_nic;
                  tx_handler = None;
                  rx_delivered = 0;
                  tx_forwarded = 0;
                  dropped_nobuf = 0;
                  rx_shed = 0;
                  dirty = false;
                }
              in
              (* A rejected {e response} push is payload the backend
                 accepted and could not deliver — a real machine-wide
                 drop. A rejected {e request} push is producer
                 back-pressure: the frontend still holds the buffer and
                 retries under backoff, so it is itemized separately
                 (the old shared hook multi-counted every retried tx
                 attempt as a drop). *)
              let count_ring_drop () =
                Counter.incr_id mach.Machine.counters ids.id_drop;
                Counter.incr_id mach.Machine.counters ids.id_ring_drop
              in
              let count_ring_reject () =
                Counter.incr_id mach.Machine.counters ids.id_ring_reject
              in
              Ring.on_response_drop chan.Net_channel.tx_ring count_ring_drop;
              Ring.on_response_drop chan.Net_channel.rx_ring count_ring_drop;
              Ring.on_request_drop chan.Net_channel.tx_ring count_ring_reject;
              Ring.on_request_drop chan.Net_channel.rx_ring count_ring_reject;
              List.iter
                (fun f -> Queue.add f t.pool)
                (Hcall.alloc_frames nic_buffers);
              pump_frontend_posts t;
              Some t
          | exception Hcall.Hcall_error _ -> None))

let connect ?admit ?fair ?napi ?attach_nic chan mach ?nic_buffers () =
  Option.get
    (connect_opt ?admit ?fair ?napi ?attach_nic chan mach ?nic_buffers ())

let set_tx_handler t h = t.tx_handler <- Some h

let port t = t.my_port
let frontend t = t.front
let demux_key t = t.chan.Net_channel.demux_key

let notify t = try Hcall.evtchn_send t.my_port with Hcall.Hcall_error _ -> ()

let handle_event t =
  pump_frontend_posts t;
  let rec drain_tx () =
    match Ring.pop_request t.chan.Net_channel.tx_ring with
    | Some { Net_channel.tx_gref; tx_len } -> begin
        Hcall.burn (Net_channel.ring_cost + per_tx_work);
        match Hcall.grant_map ~dom:t.front ~gref:tx_gref with
        | frame ->
            (match t.tx_handler with
            | Some handler ->
                (* Bridge path: the packet goes to the virtual switch,
                   not the NIC. The transmit completes immediately —
                   the frame was consumed by the handler — and the
                   switch's congestion verdict rides back on the
                   response as the ECN mark. *)
                let tag = frame.Frame.tag in
                let mark = handler ~len:tx_len ~tag in
                (try Hcall.grant_unmap ~dom:t.front ~gref:tx_gref
                 with Hcall.Hcall_error _ -> ());
                Hcall.burn Net_channel.ring_cost;
                if
                  Ring.push_response t.chan.Net_channel.tx_ring
                    { Net_channel.txr_gref = tx_gref; txr_mark = mark }
                then t.dirty <- true
                else
                  Counter.incr_id t.mach.Machine.counters
                    t.ids.id_txr_ring_full
            | None ->
                Hashtbl.replace t.tx_pending frame.Frame.index tx_gref;
                Nic.submit_tx t.mach.Machine.nic frame ~len:tx_len);
            t.tx_forwarded <- t.tx_forwarded + 1;
            Counter.incr_id t.mach.Machine.counters t.ids.id_tx_packets;
            drain_tx ()
        | exception Hcall.Hcall_error _ -> drain_tx ()
      end
    | None -> ()
  in
  drain_tx ()

(* A full rx response ring means the frontend is not consuming: reject
   before any grant work so nothing irreversible (a flipped frame, a
   copied payload) happens for a packet that cannot be delivered. No
   push is attempted, so the ring's drop hook never fires — the
   machine-wide count below is the only one (it used to claim the hook
   had counted it too, which was never true). *)
let rx_ring_full t =
  if Ring.response_space t.chan.Net_channel.rx_ring = 0 then begin
    Counter.incr_id t.mach.Machine.counters t.ids.id_rx_ring_full;
    Counter.incr_id t.mach.Machine.counters t.ids.id_drop;
    true
  end
  else false

(* One hypercall swaps the filled NIC buffer against a page the frontend
   offered; the taken empty page refills the NIC pool. *)
let deliver_flip t (ev : Nic.rx_event) =
  if rx_ring_full t then begin
    Queue.add ev.Nic.frame t.pool;
    false
  end
  else
    match Queue.take_opt t.flip_posts with
    | None ->
        t.dropped_nobuf <- t.dropped_nobuf + 1;
        Counter.incr_id t.mach.Machine.counters t.ids.id_rx_nobuf;
        (* Accepted payload discarded: a real drop (was uncounted). *)
        Counter.incr_id t.mach.Machine.counters t.ids.id_drop;
        Queue.add ev.Nic.frame t.pool;
        false
    | Some gref -> begin
        match Hcall.grant_exchange ~dom:t.front ~gref ~give:ev.Nic.frame with
        | empty ->
            Queue.add empty t.pool;
            (* Space was checked before the exchange, so this cannot
               reject. *)
            ignore
              (Ring.push_response t.chan.Net_channel.rx_ring
                 (Net_channel.Rx_flipped
                    { full = ev.Nic.frame; len = ev.Nic.len }));
            t.rx_delivered <- t.rx_delivered + 1;
            true
        | exception Hcall.Hcall_error _ ->
            (* Frontend died: keep the frame for ourselves. *)
            Queue.add ev.Nic.frame t.pool;
            false
      end

let deliver_copy t (ev : Nic.rx_event) =
  if rx_ring_full t then begin
    Queue.add ev.Nic.frame t.pool;
    false
  end
  else
    match Queue.take_opt t.copy_grants with
    | None ->
        t.dropped_nobuf <- t.dropped_nobuf + 1;
        Counter.incr_id t.mach.Machine.counters t.ids.id_rx_nobuf;
        (* Accepted payload discarded: a real drop (was uncounted). *)
        Counter.incr_id t.mach.Machine.counters t.ids.id_drop;
        Queue.add ev.Nic.frame t.pool;
        false
    | Some gref -> begin
        (* GNTTABOP_copy: one hypercall validates the grant and moves the
           bytes — the per-byte half of the ablation, on Dom0's account. *)
        match
          Hcall.grant_copy ~dom:t.front ~gref ~bytes:ev.Nic.len ~tag:ev.Nic.tag
        with
        | () ->
            (* Space was checked before the copy, so this cannot
               reject. *)
            ignore
              (Ring.push_response t.chan.Net_channel.rx_ring
                 (Net_channel.Rx_copied { rxr_gref = gref; len = ev.Nic.len }));
            t.rx_delivered <- t.rx_delivered + 1;
            Queue.add ev.Nic.frame t.pool;
            true
        | exception Hcall.Hcall_error _ ->
            Queue.add ev.Nic.frame t.pool;
            false
      end

(* Shed at the admission gate, before the expensive per-packet work —
   the receive-livelock defense. *)
let shed_one t (ev : Nic.rx_event) =
  Hcall.burn shed_work;
  t.rx_shed <- t.rx_shed + 1;
  Counter.incr_id t.mach.Machine.counters t.ids.id_rx_shed;
  Counter.incr_id t.mach.Machine.counters t.ids.id_shed;
  Queue.add ev.Nic.frame t.pool

let deliver_admitted t (ev : Nic.rx_event) =
  pump_frontend_posts t;
  Hcall.burn per_packet_work;
  Counter.incr_id t.mach.Machine.counters t.ids.id_rx_packets;
  Counter.add_id t.mach.Machine.counters t.ids.id_rx_bytes ev.Nic.len;
  let ok =
    match t.chan.Net_channel.mode with
    | Net_channel.Flip -> deliver_flip t ev
    | Net_channel.Copy -> deliver_copy t ev
  in
  if ok then t.dirty <- true

(* Fair-share key: the vnet source decoded from the tag convention
   (tag = dst·10⁶ + src·10⁴ + seq). Meaningful only under the vnet
   encoding, which is the only place [fair] is installed. *)
let fair_key tag = tag mod 1_000_000 / 10_000

let fair_shed t (ev : Nic.rx_event) =
  match t.fair with
  | None -> false
  | Some fair ->
      not
        (Overload.Weighted_buckets.admit fair ~key:(fair_key ev.Nic.tag)
           ~now:(Engine.now t.mach.Machine.engine))

let deliver_rx t (ev : Nic.rx_event) =
  let shed =
    (match t.admit with
    | None -> false
    | Some bucket ->
        not
          (Overload.Token_bucket.admit bucket
             ~now:(Engine.now t.mach.Machine.engine)))
    || fair_shed t ev
  in
  if shed then shed_one t ev else deliver_admitted t ev

(* Batch admission: one bucket refill covers the whole poll batch, the
   admitted prefix is delivered, the tail is shed. *)
let deliver_batch t evs =
  let n = List.length evs in
  let k =
    match t.admit with
    | None -> n
    | Some bucket ->
        Overload.Token_bucket.admit_n bucket
          ~now:(Engine.now t.mach.Machine.engine)
          n
  in
  List.iteri
    (fun i ev ->
      if i >= k || fair_shed t ev then shed_one t ev
      else deliver_admitted t ev)
    evs

(* Inject one packet into the receive path without the physical NIC:
   the bridge hands switch output here. A pool frame stands in for the
   NIC buffer; every deliver/shed branch returns it to the pool, so the
   pool count is conserved. *)
let deliver_pkt t ~len ~tag =
  match Queue.take_opt t.pool with
  | None ->
      t.dropped_nobuf <- t.dropped_nobuf + 1;
      Counter.incr_id t.mach.Machine.counters t.ids.id_rx_nobuf;
      Counter.incr_id t.mach.Machine.counters t.ids.id_drop;
      false
  | Some frame ->
      Frame.set_tag frame tag;
      let before = t.rx_delivered in
      deliver_rx t { Nic.frame; len; tag };
      t.rx_delivered > before

(* The bridge's delivery gate: [deliver_pkt] would land this packet on
   the frontend's ring rather than shed it for want of resources. The
   frontend's repost-notify wakes the bridge again, so a [false] here
   means "leave it queued at the switch", not "drop it". *)
let rx_ready t =
  pump_frontend_posts t;
  (not (Queue.is_empty t.pool))
  && Ring.response_space t.chan.Net_channel.rx_ring > 0
  &&
  match t.chan.Net_channel.mode with
  | Net_channel.Flip -> not (Queue.is_empty t.flip_posts)
  | Net_channel.Copy -> not (Queue.is_empty t.copy_grants)

let complete_tx t (frame : Frame.frame) =
  match Hashtbl.find_opt t.tx_pending frame.Frame.index with
  | Some gref ->
      Hcall.burn Net_channel.ring_cost;
      Hashtbl.remove t.tx_pending frame.Frame.index;
      (try Hcall.grant_unmap ~dom:t.front ~gref with Hcall.Hcall_error _ -> ());
      if
        Ring.push_response t.chan.Net_channel.tx_ring
          { Net_channel.txr_gref = gref; txr_mark = false }
      then t.dirty <- true
      else
        (* The frontend is not reaping tx completions; it will see the
           buffer as lost. The ring's on_drop hook counted the drop. *)
        Counter.incr_id t.mach.Machine.counters t.ids.id_txr_ring_full;
      true
  | None -> false

let flush t =
  restock_nic t;
  if t.dirty then begin
    t.dirty <- false;
    notify t
  end

let rec drain_tx_done t =
  match Nic.tx_done t.mach.Machine.nic with
  | Some (frame, _len) ->
      ignore (complete_tx t frame);
      drain_tx_done t
  | None -> ()

(* NAPI service: the IRQ that got us here masked the line (conceptually —
   we do it on entry, which is equivalent since the line stays masked for
   the whole loop). Each round drains up to [budget] packets at one
   poll_batch_cost, delivers them as one batch and sends at most one
   event-channel notify (the [flush]); the line is acknowledged and
   re-enabled only when a round comes back empty, with a post-unmask
   recheck closing the poll/unmask race. *)
let napi_service t ~budget =
  let mach = t.mach in
  let nic = mach.Machine.nic in
  let line = Nic.irq_line nic in
  let counters = mach.Machine.counters in
  Vmk_hw.Irq.mask mach.Machine.irq line;
  pump_frontend_posts t;
  let rec round () =
    match Nic.poll nic ~budget with
    | [] ->
        drain_tx_done t;
        flush t;
        Vmk_hw.Irq.ack mach.Machine.irq line;
        Vmk_hw.Irq.unmask mach.Machine.irq line;
        Counter.incr_id counters t.ids.id_mitig_reenable;
        if Nic.rx_pending nic > 0 || Nic.tx_completions_pending nic > 0
        then begin
          Vmk_hw.Irq.mask mach.Machine.irq line;
          round ()
        end
    | evs ->
        Hcall.burn mach.Machine.arch.Arch.poll_batch_cost;
        Counter.incr_id counters t.ids.id_mitig_poll_rounds;
        Overload.note_batch counters (List.length evs);
        deliver_batch t evs;
        drain_tx_done t;
        flush t;
        round ()
  in
  round ()

let handle_nic t =
  match t.napi with
  | Some budget -> napi_service t ~budget
  | None ->
      pump_frontend_posts t;
      let rec drain_rx () =
        match Nic.rx_ready t.mach.Machine.nic with
        | Some ev ->
            deliver_rx t ev;
            drain_rx ()
        | None -> ()
      in
      drain_rx ();
      drain_tx_done t;
      flush t

let rx_delivered t = t.rx_delivered
let tx_forwarded t = t.tx_forwarded
let rx_dropped_nobuf t = t.dropped_nobuf
let rx_shed t = t.rx_shed

let ring_drops t =
  Ring.dropped_total t.chan.Net_channel.tx_ring
  + Ring.dropped_total t.chan.Net_channel.rx_ring
