(** Dom0-side block backend.

    Grant-maps the guest's data buffer and lets the disk DMA directly
    to/from it (zero-copy), completing the ring request when the disk
    interrupt arrives. Per-request Dom0 work is constant; the disk does
    the byte moving. *)

type t

val connect : Blk_channel.t -> Vmk_hw.Machine.t -> unit -> t
(** Backend half of the handshake (spins until the frontend published its
    port). *)

val connect_opt :
  ?timeout:int64 ->
  ?generation:int ->
  Blk_channel.t ->
  Vmk_hw.Machine.t ->
  unit ->
  t option
(** Like {!connect} but with a bounded wait ([None] on timeout or bind
    failure). [generation > 0] runs the reconnect handshake of a
    restarted backend: publish [key/g<n>/backend-dom], bump [key/gen] to
    cue the frontend, and negotiate a fresh port pair under the [g<n>]
    subtree (the old port is unusable — it is bound to the dead
    predecessor). *)

val port : t -> Hcall.port
val frontend : t -> Hcall.domid

val handle_event : t -> unit
(** Pull requests from the ring and submit them to the disk. *)

val try_complete : t -> Vmk_hw.Disk.request -> bool
(** Offer a finished disk request; [true] if it belonged to this backend
    (response pushed, frontend notified). Dom0 drains the disk and routes
    completions through this. *)

val requests_served : t -> int
