type rx_mode = Flip | Copy

type tx_req = { tx_gref : Hcall.gref; tx_len : int }
type tx_resp = { txr_gref : Hcall.gref; txr_mark : bool }

type rx_req =
  | Rx_post_flip of { flip_gref : Hcall.gref }
  | Rx_post_copy of { rx_gref : Hcall.gref }

type rx_resp =
  | Rx_flipped of { full : Vmk_hw.Frame.frame; len : int }
  | Rx_copied of { rxr_gref : Hcall.gref; len : int }

type t = {
  mode : rx_mode;
  key : string;
  tx_ring : (tx_req, tx_resp) Ring.t;
  rx_ring : (rx_req, rx_resp) Ring.t;
  mutable front_dom : Hcall.domid option;
  mutable offer_port : Hcall.port option;
  mutable front_port : Hcall.port option;
  mutable back_port : Hcall.port option;
  mutable demux_key : int;
}

let create ~mode ?(ring_size = 64) ~demux_key () =
  {
    mode;
    key = Printf.sprintf "device/net/%d" demux_key;
    tx_ring = Ring.create ~capacity:ring_size ();
    rx_ring = Ring.create ~capacity:ring_size ();
    front_dom = None;
    offer_port = None;
    front_port = None;
    back_port = None;
    demux_key;
  }

let ring_cost = 25
