(** Split-driver shared ring.

    The frontend/backend communication structure of the Xen I/O model: a
    bounded request ring and a bounded response ring living in a shared
    page. Ring slots carry OCaml values; the CPU cost of ring accesses is
    charged by the callers (they burn guest/Dom0 cycles per operation), so
    this module is pure bookkeeping. Notification is out of band via event
    channels. *)

type ('req, 'resp) t

val create : capacity:int -> unit -> ('req, 'resp) t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : ('req, 'resp) t -> int

val effective_capacity : ('req, 'resp) t -> int
(** [capacity] clamped by any {!set_limit} squeeze in force. *)

val set_limit : ('req, 'resp) t -> int option -> unit
(** Clamp ([Some l]) or restore ([None]) the effective capacity — the
    ring-saturation fault lever ({!Vmk_faults} [Ring_squeeze]). Entries
    already queued above the new limit stay until popped; only new
    pushes see the clamp.
    @raise Invalid_argument if [l < 1]. *)

val on_drop : ('req, 'resp) t -> (unit -> unit) -> unit
(** Install a hook invoked on every rejected push (either direction),
    replacing any previous hooks (equivalent to {!on_request_drop} and
    {!on_response_drop} with the same hook). Backends use these to
    surface per-ring rejections into machine-wide overload counters. *)

val on_request_drop : ('req, 'resp) t -> (unit -> unit) -> unit
(** Hook for rejected {e request} pushes only. A refused request is
    producer back-pressure — the frontend holds the payload and
    typically retries under backoff — so backends count it under
    [overload.ring_reject.*], not [overload.drop] (the E17 bugfix: the
    old shared hook multi-counted every retried tx attempt as a
    machine-wide drop). *)

val on_response_drop : ('req, 'resp) t -> (unit -> unit) -> unit
(** Hook for rejected {e response} pushes only — payload the backend
    accepted and then could not deliver, i.e. a real drop. *)

val push_request : ('req, 'resp) t -> 'req -> bool
(** Enqueue a request; [false] when the ring is full (frontend must back
    off — full rings are where Dom0 saturation shows up in E3). *)

val pop_request : ('req, 'resp) t -> 'req option
val push_response : ('req, 'resp) t -> 'resp -> bool
val pop_response : ('req, 'resp) t -> 'resp option
val requests_pending : ('req, 'resp) t -> int
val responses_pending : ('req, 'resp) t -> int

val request_space : ('req, 'resp) t -> int
(** Free request slots under the effective capacity. *)

val response_space : ('req, 'resp) t -> int
(** Free response slots — backends check this {e before} doing
    irreversible work (grant exchange) so a full response ring is an
    explicit cheap drop, not a leaked frame. *)

val requests_total : ('req, 'resp) t -> int
(** Requests ever pushed (throughput accounting). *)

val responses_total : ('req, 'resp) t -> int

val request_dropped_total : ('req, 'resp) t -> int
(** Request pushes rejected because the ring was full. *)

val response_dropped_total : ('req, 'resp) t -> int

val dropped_total : ('req, 'resp) t -> int
(** Pushes rejected because a ring was full (both directions). *)
