(** The Xen-style hypervisor.

    Domains are single-VCPU fibers scheduled round-robin; the hypervisor
    implements the primitive inventory of {!Hcall}: event channels, grant
    tables (including transfer, i.e. page flipping), validated page-table
    updates, physical-IRQ routing to driver domains, and the two guest
    system-call paths (trap-gate shortcut vs bounce through the VMM).

    Like Xen, the hypervisor lives in a reserved hole at the top of every
    guest address space ({!vmm_hole}); hypercalls therefore cost a trap
    but no address-space switch, while switching *between* domains is a
    full world switch (TLB flush on untagged platforms).

    Cost accounting: guest computation is charged to the domain's
    account (its name); all hypervisor work to ["vmm"]. *)

type t

val vmm_account : string
(** ["vmm"]. *)

val vmm_hole : Vmk_hw.Addr.range
(** The reserved hypervisor address range guest segments must exclude for
    the syscall shortcut to be safe. *)

type pt_mode =
  | Paravirt  (** Validated hypercall updates (Xen's paravirtualisation). *)
  | Shadow
      (** Trap-and-shadow page tables (full-virtualisation style):
          guest PTE writes fault into the VMM, which synchronises a
          shadow — compare ablation A6. *)

val create : Vmk_hw.Machine.t -> t

val machine : t -> Vmk_hw.Machine.t

val caps : t -> Vmk_cap.Cap.t
(** The machine's capability tables (E19). Grant entries and grant
    mappings are mirrored here as a derivation tree — grant caps parent
    the map caps of their mappings, and transitive grants derive from
    the map cap they were made through — so revocation cascades. *)

val set_grant_cap : t -> int option -> unit
(** Clamp ([Some cap]) or restore ([None]) the machine-wide number of
    live grant entries. Once at the cap, new grants fail with
    [Out_of_memory] (counter ["vmm.grant_exhausted"]) until entries are
    revoked — the grant-table-exhaustion fault window of E15
    ({!Vmk_faults} [Grant_squeeze]).
    @raise Invalid_argument on a negative cap. *)

val live_grants : t -> int
(** Grant entries currently live across all domains. *)

val create_domain :
  t ->
  name:string ->
  ?privileged:bool ->
  ?weight:int ->
  ?pt_mode:pt_mode ->
  (unit -> unit) ->
  Hcall.domid
(** Add a domain running [body] as its (para-virtualised) kernel.
    [privileged] domains (Dom0, driver domains) may bind physical IRQs.
    [weight] is the stride-scheduler share (default 256; Xen's credit
    scheduler analog — a boosted driver domain gets proportionally more
    CPU, see ablation A5). The domain's cycle account is its name.

    @raise Invalid_argument if [weight < 1]. *)

type stop_reason = Idle | Condition | Dispatch_limit

val run : ?until:(unit -> bool) -> ?max_dispatches:int -> t -> stop_reason

val kill_domain : t -> Hcall.domid -> unit
(** Destroy a domain abruptly (fault injection). Peers are not notified —
    they discover through send errors and block timeouts, which is the
    §3.1 liability-inversion behaviour under test. *)

type supervisor
(** Toolstack-style babysitter for a (driver) domain: an engine timer
    that polls liveness every [period] cycles and replaces a dead domain
    with a fresh one. The VMM analog of the microkernel's
    {!Vmk_ukernel.Watchdog} — restart is domain creation, which is why
    frontends then need the generation reconnect handshake. *)

val supervise :
  t ->
  name:string ->
  ?privileged:bool ->
  ?weight:int ->
  ?pt_mode:pt_mode ->
  period:int64 ->
  make_body:(restart:int -> unit -> unit) ->
  Hcall.domid ->
  supervisor
(** [supervise h ~name ~period ~make_body domid0] watches [domid0]; on
    death, runs [make_body ~restart:n] (n = 1, 2, …) in a new domain.
    Counter: ["vmm.supervisor_restart"]. Call {!stop_supervisor} before
    the final drain — the poll timer otherwise keeps the engine busy
    forever. *)

val supervised_domid : supervisor -> Hcall.domid
(** The currently live incarnation. *)

val restarts : supervisor -> (int64 * Hcall.domid) list
(** [(virtual time, new domid)] per restart, oldest first. *)

val stop_supervisor : supervisor -> unit

val is_alive : t -> Hcall.domid -> bool
val domain_name : t -> Hcall.domid -> string option
val domain_count : t -> int
(** Live domains. *)

val state_name : t -> Hcall.domid -> string
(** ["ready"|"running"|"blocked"|"dead"|"missing"]. *)

val pending_event_count : t -> Hcall.domid -> int

val is_paused : t -> Hcall.domid -> bool
(** Paused domains keep their state but are excluded from scheduling
    (E20 stop-and-copy quiesce); events accumulate until unpause. *)

val dirty_count : t -> Hcall.domid -> int
(** Pages currently marked in the domain's log-dirty bitmap. *)

val runnable_names : t -> string list
(** Names currently in the run queue (diagnostics). *)
