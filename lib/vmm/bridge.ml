module Machine = Vmk_hw.Machine
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter
module Vnet = Vmk_vnet.Vnet

let name = "bridge"

(* The tag convention shared with {!Vmk_guest.Sys}: dst·10⁶ + src·10⁴
   + seq. The dst decode is the same [tag / 10⁶] demux key Dom0 has
   always used, so vnet traffic and NIC traffic route identically. *)
let tag_dst tag = tag / 1_000_000
let tag_src tag = tag mod 1_000_000 / 10_000

let body mach ?connect_timeout ?generation ?net_admit ?fair ?mac_ttl
    ?(flow_capacity = 64) ?(port_capacity = 64) ?mark_at ?(net = []) () =
  let mux = Evt_mux.create () in
  let now () = Engine.now mach.Machine.engine in
  let switch =
    Vnet.Switch.create ~counters:mach.Machine.counters ~burn:Hcall.burn
      ?mac_ttl ~flow_capacity ~port_capacity ?mark_at ?fair ()
  in
  let dropped chan_key =
    Logs.warn (fun m ->
        m "bridge: frontend never connected on %s; dropping channel" chan_key);
    Counter.incr mach.Machine.counters "bridge.connect_dropped";
    None
  in
  let netbacks =
    List.filter_map
      (fun chan ->
        match
          Netback.connect_opt ?timeout:connect_timeout ?generation
            ?admit:net_admit ~attach_nic:false chan mach ()
        with
        | Some back -> Some back
        | None -> dropped chan.Net_channel.key)
      net
  in
  List.iter
    (fun back ->
      let in_port = Netback.demux_key back in
      ignore (Vnet.Switch.add_port switch ~id:in_port);
      (* Static FDB entry for the attachment (the [bridge fdb add]
         analog): station ids are port ids under the machine-wide tag
         convention, so a receive-only guest is routable before it ever
         transmits. Dynamic learning still refreshes/moves entries. *)
      Vnet.Mac_table.learn
        (Vnet.Switch.mac_table switch)
        ~now:(now ()) ~mac:in_port ~port:in_port;
      (* Transmit = first Dom0 crossing: the guest's packet enters the
         switch; the forward verdict's ECN mark rides back on the tx
         completion. *)
      Netback.set_tx_handler back (fun ~len ~tag ->
          let pkt =
            { Vnet.src = tag_src tag; dst = tag_dst tag; len; tag }
          in
          let d = Vnet.Switch.forward switch ~now:(now ()) ~in_port pkt in
          d.Vnet.Switch.marked))
    netbacks;
  (* Second Dom0 crossing: switch output drains into the destination's
     netback (flip/copy + notify), exactly like NIC receive. Run after
     each event batch, not after each packet, so a burst can pile up on
     a port queue and trip the ECN watermark. *)
  let drain_switch () =
    List.iter
      (fun back ->
        let port = Netback.demux_key back in
        let rec go () =
          if Netback.rx_ready back then
            match Vnet.Switch.pop switch ~port with
            | Some pkt ->
                ignore
                  (Netback.deliver_pkt back ~len:pkt.Vnet.len ~tag:pkt.Vnet.tag);
                go ()
            | None -> ()
        in
        go ();
        Netback.flush back)
      netbacks
  in
  List.iter
    (fun back ->
      Evt_mux.on mux (Netback.port back) (fun () -> Netback.handle_event back))
    netbacks;
  (* Catch transmits queued before the handshakes finished. *)
  List.iter Netback.handle_event netbacks;
  drain_switch ();
  let rec serve () =
    (match Hcall.block () with
    | Hcall.Events ports ->
        Counter.add mach.Machine.counters "bridge.wakeups" 1;
        Counter.add mach.Machine.counters "bridge.events" (List.length ports);
        Evt_mux.dispatch mux ports;
        drain_switch ()
    | Hcall.Timed_out -> ());
    serve ()
  in
  serve ()
