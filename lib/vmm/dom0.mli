(** Dom0 — the privileged "super-VM" hosting the legacy drivers.

    Binds the physical NIC and disk interrupts, connects the backends for
    every channel it is given, and multiplexes events forever. This is
    the centralised structure the paper's §2.2 warns about ("a single
    point of failure"): experiment E6 kills it and measures the blast
    radius; experiment E3 measures how much of the machine's CPU it
    consumes under I/O load. *)

val name : string
(** ["dom0"] — also its cycle account. *)

val body :
  Vmk_hw.Machine.t ->
  ?connect_timeout:int64 ->
  ?generation:int ->
  ?net_admit:Vmk_overload.Overload.Token_bucket.t ->
  ?net_napi:int ->
  ?net_poll:int64 ->
  ?net:Net_channel.t list ->
  ?blk:Blk_channel.t list ->
  unit ->
  unit
(** The Dom0 kernel: create with
    [Hypervisor.create_domain h ~name:Dom0.name ~privileged:true
      (Dom0.body mach ~net ~blk)].

    Without [connect_timeout], every channel in [net]/[blk] must
    eventually be connected by a frontend or Dom0 blocks in the
    handshake forever. With it, a channel whose frontend never appears
    within the bound is logged and dropped (counter
    ["dom0.connect_dropped"]) and Dom0 serves the rest.

    [generation > 0] is for a restarted Dom0: each backend runs the
    reconnect handshake under the channel's [key/g<n>/] subtree (see
    {!Blkback.connect_opt}) so surviving frontends can rebind.

    [net_admit] installs a single token-bucket admission gate shared by
    every net backend — one gate for the physical NIC. Packets beyond
    the rate are shed before delivery work (E15's livelock defense).

    [net_napi] puts every net backend in NAPI-style hybrid
    interrupt/polling mode with the given poll budget (see
    {!Netback.connect}). [net_poll] is polling-only mode (E16's other
    extreme): the NIC interrupt is never bound — the line stays masked,
    so the hypervisor routes nothing — and Dom0 services the NIC every
    [net_poll] cycles off its block timeout (counter
    ["dom0.poll_ticks"]), trading idle-time poll work for zero per-packet
    interrupt cost. *)
