module Machine = Vmk_hw.Machine

let name = "dom0"

(* Since E18 the backend machinery lives in {!Driver_dom.service_body},
   shared with the disaggregated driver domains; the monolithic Dom0 is
   the configuration that runs both device classes under one roof (and
   one cycle account, and one blast radius). *)
let body mach ?connect_timeout ?generation ?net_admit ?net_napi ?net_poll
    ?(net = []) ?(blk = []) () =
  Driver_dom.service_body mach ~prefix:name ?connect_timeout ?generation
    ?net_admit ?net_napi ?net_poll ~net ~blk ()
