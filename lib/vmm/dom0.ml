module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk

let name = "dom0"

let body mach ?connect_timeout ?generation ?net_admit ?net_napi ?net_poll
    ?(net = []) ?(blk = []) () =
  let mux = Evt_mux.create () in
  (* A channel whose frontend never shows up used to hang Dom0 in the
     handshake forever; with a timeout it is logged and dropped, and
     Dom0 serves whoever did connect. *)
  let dropped kind chan_key =
    Logs.warn (fun m ->
        m "dom0: %s frontend never connected on %s; dropping channel" kind
          chan_key);
    Vmk_trace.Counter.incr mach.Machine.counters "dom0.connect_dropped";
    None
  in
  let netbacks =
    List.filter_map
      (fun chan ->
        match
          Netback.connect_opt ?timeout:connect_timeout ?generation
            ?admit:net_admit ?napi:net_napi chan mach ()
        with
        | Some back -> Some back
        | None -> dropped "net" chan.Net_channel.key)
      net
  in
  let blkbacks =
    List.filter_map
      (fun chan ->
        match
          Blkback.connect_opt ?timeout:connect_timeout ?generation chan mach ()
        with
        | Some back -> Some back
        | None -> dropped "blk" chan.Blk_channel.key)
      blk
  in
  let handle_disk () =
    let rec drain () =
      match Disk.completed mach.Machine.disk with
      | Some request ->
          ignore (List.exists (fun b -> Blkback.try_complete b request) blkbacks);
          drain ()
      | None -> ()
    in
    drain ()
  in
  (* With one frontend the backend drains the NIC itself; with several,
     Dom0 drains and demultiplexes by the packet tag's key. *)
  let handle_nic_all () =
    match netbacks with
    | [ only ] -> Netback.handle_nic only
    | backs ->
        let route_rx (ev : Vmk_hw.Nic.rx_event) =
          let key = ev.Vmk_hw.Nic.tag / 1_000_000 in
          match List.find_opt (fun b -> Netback.demux_key b = key) backs with
          | Some back -> Netback.deliver_rx back ev
          | None ->
              Vmk_trace.Counter.incr mach.Machine.counters "dom0.rx_no_route"
        in
        let rec drain_rx () =
          match Vmk_hw.Nic.rx_ready mach.Machine.nic with
          | Some ev ->
              route_rx ev;
              drain_rx ()
          | None -> ()
        in
        let rec drain_tx () =
          match Vmk_hw.Nic.tx_done mach.Machine.nic with
          | Some (frame, _len) ->
              ignore (List.exists (fun b -> Netback.complete_tx b frame) backs);
              drain_tx ()
          | None -> ()
        in
        drain_rx ();
        drain_tx ();
        List.iter Netback.flush backs
  in
  (* Polling-only mode: never bind the NIC interrupt — mask the line so
     the hypervisor's IRQ router has nothing to charge — and service the
     device on the serve loop's block timeout instead. *)
  let polling = net <> [] && net_poll <> None in
  if polling then Vmk_hw.Irq.mask mach.Machine.irq Machine.nic_irq
  else if net <> [] then begin
    let nic_port = Hcall.irq_bind Machine.nic_irq in
    Evt_mux.on mux nic_port (fun () ->
        Vmk_trace.Counter.incr mach.Machine.counters "dom0.nic_events";
        handle_nic_all ())
  end;
  if blk <> [] then begin
    let disk_port = Hcall.irq_bind Machine.disk_irq in
    Evt_mux.on mux disk_port handle_disk
  end;
  List.iter
    (fun back -> Evt_mux.on mux (Netback.port back) (fun () -> Netback.handle_event back))
    netbacks;
  List.iter
    (fun back -> Evt_mux.on mux (Blkback.port back) (fun () -> Blkback.handle_event back))
    blkbacks;
  (* Catch anything posted before the handshakes finished. *)
  List.iter Netback.handle_event netbacks;
  if netbacks <> [] then handle_nic_all ();
  List.iter Blkback.handle_event blkbacks;
  handle_disk ();
  let rec serve () =
    (match Hcall.block ?timeout:net_poll () with
    | Hcall.Events ports ->
        Vmk_trace.Counter.add mach.Machine.counters "dom0.wakeups" 1;
        Vmk_trace.Counter.add mach.Machine.counters "dom0.events"
          (List.length ports);
        Evt_mux.dispatch mux ports;
        if polling then handle_nic_all ()
    | Hcall.Timed_out ->
        if polling then begin
          Vmk_trace.Counter.incr mach.Machine.counters "dom0.poll_ticks";
          handle_nic_all ()
        end);
    serve ()
  in
  serve ()
