module Frame = Vmk_hw.Frame
module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Counter = Vmk_trace.Counter

let per_request_work = 360

type pending = { ring_id : int; gref : Hcall.gref }

type t = {
  chan : Blk_channel.t;
  mach : Machine.t;
  front : Hcall.domid;
  my_port : Hcall.port;
  inflight : (int, pending) Hashtbl.t;  (** disk request id -> pending *)
  mutable served : int;
}

(* Generation 0 is the classic handshake under [key/]. A restarted
   backend cannot rebind the old frontend port (it is Bound to the dead
   domain), so reconnects negotiate a fresh port pair under
   [key/g<n>/]: the backend publishes its domid there, bumps [key/gen]
   (the frontend's cue), and waits for the frontend's fresh offer. *)
let connect_opt ?timeout ?(generation = 0) chan mach () =
  let key = chan.Blk_channel.key in
  let sub path =
    if generation = 0 then key ^ "/" ^ path
    else Printf.sprintf "%s/g%d/%s" key generation path
  in
  if generation > 0 then begin
    Hcall.xs_write ~path:(sub "backend-dom")
      ~value:(string_of_int (Hcall.dom_id ()));
    Hcall.xs_write ~path:(key ^ "/gen") ~value:(string_of_int generation)
  end;
  match Hcall.xs_wait_for ?timeout (sub "frontend-dom") with
  | None -> None
  | Some front_s -> (
      match Hcall.xs_wait_for ?timeout (sub "frontend-port") with
      | None -> None
      | Some offer_s -> (
          let front = int_of_string front_s in
          let offer = int_of_string offer_s in
          match Hcall.evtchn_bind ~remote_dom:front ~remote_port:offer with
          | my_port ->
              chan.Blk_channel.back_port <- Some my_port;
              Hcall.xs_write ~path:(sub "backend-port")
                ~value:(string_of_int my_port);
              (* Response rejections are lost completions (real drops);
                 request rejections are frontend back-pressure, itemized
                 separately so retried submits do not inflate the
                 machine-wide drop count. *)
              Ring.on_response_drop chan.Blk_channel.ring (fun () ->
                  Counter.incr mach.Machine.counters
                    Vmk_overload.Overload.drop_counter;
                  Counter.incr mach.Machine.counters "overload.ring_drop.blk");
              Ring.on_request_drop chan.Blk_channel.ring (fun () ->
                  Counter.incr mach.Machine.counters
                    (Vmk_overload.Overload.ring_reject_prefix ^ "blk"));
              Some
                {
                  chan;
                  mach;
                  front;
                  my_port;
                  inflight = Hashtbl.create 16;
                  served = 0;
                }
          | exception Hcall.Hcall_error _ -> None))

let connect chan mach () = Option.get (connect_opt chan mach ())

let port t = t.my_port
let frontend t = t.front

let notify t = try Hcall.evtchn_send t.my_port with Hcall.Hcall_error _ -> ()

let respond t ring_id ok =
  Hcall.burn Blk_channel.ring_cost;
  if
    not
      (Ring.push_response t.chan.Blk_channel.ring
         { Blk_channel.r_id = ring_id; ok })
  then
    (* The frontend will see the request time out rather than lose the
       completion silently; the ring's on_drop hook counted the drop. *)
    Counter.incr t.mach.Machine.counters "blkback.resp_ring_full";
  notify t

let handle_event t =
  let rec drain () =
    match Ring.pop_request t.chan.Blk_channel.ring with
    | Some { Blk_channel.id; op; sector; gref; bytes } -> begin
        Hcall.burn (Blk_channel.ring_cost + per_request_work);
        match Hcall.grant_map ~dom:t.front ~gref with
        | frame ->
            let disk_op =
              match op with
              | Blk_channel.Read -> Disk.Read
              | Blk_channel.Write -> Disk.Write
            in
            let disk_id =
              Disk.submit t.mach.Machine.disk disk_op ~sector ~frame ~bytes
            in
            Hashtbl.replace t.inflight disk_id { ring_id = id; gref };
            Counter.incr t.mach.Machine.counters "blkback.requests";
            drain ()
        | exception Hcall.Hcall_error _ ->
            respond t id false;
            drain ()
      end
    | None -> ()
  in
  drain ()

let try_complete t (request : Disk.request) =
  match Hashtbl.find_opt t.inflight request.Disk.id with
  | Some { ring_id; gref } ->
      Hashtbl.remove t.inflight request.Disk.id;
      Hcall.burn per_request_work;
      (try Hcall.grant_unmap ~dom:t.front ~gref with Hcall.Hcall_error _ -> ());
      respond t ring_id request.Disk.ok;
      t.served <- t.served + 1;
      true
  | None -> false

let requests_served t = t.served
