module Machine = Vmk_hw.Machine
module Disk = Vmk_hw.Disk
module Engine = Vmk_sim.Engine
module Counter = Vmk_trace.Counter

let net_name = "netdrv"
let blk_name = "blkdrv"
let toolstack_name = "toolstack"

(* The backend service core, shared verbatim between the monolithic Dom0
   (both device classes, prefix "dom0") and the disaggregated driver
   domains (one class each, their own prefix and so their own cycle
   account and counters). *)
let service_body mach ~prefix ?connect_timeout ?generation ?net_admit
    ?net_napi ?net_poll ?(net = []) ?(blk = []) () =
  let mux = Evt_mux.create () in
  (* A channel whose frontend never shows up used to hang the domain in
     the handshake forever; with a timeout it is logged and dropped, and
     the domain serves whoever did connect. *)
  let dropped kind chan_key =
    Logs.warn (fun m ->
        m "%s: %s frontend never connected on %s; dropping channel" prefix
          kind chan_key);
    Counter.incr mach.Machine.counters (prefix ^ ".connect_dropped");
    None
  in
  let netbacks =
    List.filter_map
      (fun chan ->
        match
          Netback.connect_opt ?timeout:connect_timeout ?generation
            ?admit:net_admit ?napi:net_napi chan mach ()
        with
        | Some back -> Some back
        | None -> dropped "net" chan.Net_channel.key)
      net
  in
  let blkbacks =
    List.filter_map
      (fun chan ->
        match
          Blkback.connect_opt ?timeout:connect_timeout ?generation chan mach ()
        with
        | Some back -> Some back
        | None -> dropped "blk" chan.Blk_channel.key)
      blk
  in
  let handle_disk () =
    let rec drain () =
      match Disk.completed mach.Machine.disk with
      | Some request ->
          ignore (List.exists (fun b -> Blkback.try_complete b request) blkbacks);
          drain ()
      | None -> ()
    in
    drain ()
  in
  (* With one frontend the backend drains the NIC itself; with several,
     the domain drains and demultiplexes by the packet tag's key. *)
  let handle_nic_all () =
    match netbacks with
    | [ only ] -> Netback.handle_nic only
    | backs ->
        let route_rx (ev : Vmk_hw.Nic.rx_event) =
          let key = ev.Vmk_hw.Nic.tag / 1_000_000 in
          match List.find_opt (fun b -> Netback.demux_key b = key) backs with
          | Some back -> Netback.deliver_rx back ev
          | None ->
              Counter.incr mach.Machine.counters (prefix ^ ".rx_no_route")
        in
        let rec drain_rx () =
          match Vmk_hw.Nic.rx_ready mach.Machine.nic with
          | Some ev ->
              route_rx ev;
              drain_rx ()
          | None -> ()
        in
        let rec drain_tx () =
          match Vmk_hw.Nic.tx_done mach.Machine.nic with
          | Some (frame, _len) ->
              ignore (List.exists (fun b -> Netback.complete_tx b frame) backs);
              drain_tx ()
          | None -> ()
        in
        drain_rx ();
        drain_tx ();
        List.iter Netback.flush backs
  in
  (* Polling-only mode: never bind the NIC interrupt — mask the line so
     the hypervisor's IRQ router has nothing to charge — and service the
     device on the serve loop's block timeout instead. *)
  let polling = net <> [] && net_poll <> None in
  if polling then Vmk_hw.Irq.mask mach.Machine.irq Machine.nic_irq
  else if net <> [] then begin
    let nic_port = Hcall.irq_bind Machine.nic_irq in
    Evt_mux.on mux nic_port (fun () ->
        Counter.incr mach.Machine.counters (prefix ^ ".nic_events");
        handle_nic_all ())
  end;
  if blk <> [] then begin
    let disk_port = Hcall.irq_bind Machine.disk_irq in
    Evt_mux.on mux disk_port handle_disk
  end;
  List.iter
    (fun back ->
      Evt_mux.on mux (Netback.port back) (fun () -> Netback.handle_event back))
    netbacks;
  List.iter
    (fun back ->
      Evt_mux.on mux (Blkback.port back) (fun () -> Blkback.handle_event back))
    blkbacks;
  (* Catch anything posted before the handshakes finished. *)
  List.iter Netback.handle_event netbacks;
  if netbacks <> [] then handle_nic_all ();
  List.iter Blkback.handle_event blkbacks;
  handle_disk ();
  let rec serve () =
    (match Hcall.block ?timeout:net_poll () with
    | Hcall.Events ports ->
        Counter.add mach.Machine.counters (prefix ^ ".wakeups") 1;
        Counter.add mach.Machine.counters (prefix ^ ".events")
          (List.length ports);
        Evt_mux.dispatch mux ports;
        if polling then handle_nic_all ()
    | Hcall.Timed_out ->
        if polling then begin
          Counter.incr mach.Machine.counters (prefix ^ ".poll_ticks");
          handle_nic_all ()
        end);
    serve ()
  in
  serve ()

let net_body mach ?connect_timeout ?generation ?admit ?napi ?poll ~net () =
  service_body mach ~prefix:net_name ?connect_timeout ?generation
    ?net_admit:admit ?net_napi:napi ?net_poll:poll ~net ()

let blk_body mach ?connect_timeout ?generation ~blk () =
  service_body mach ~prefix:blk_name ?connect_timeout ?generation ~blk ()

(* --- the thin toolstack Dom0 --- *)

type spec = {
  ds_name : string;
  ds_privileged : bool;
  ds_weight : int;
  ds_make : restart:int -> unit -> unit;
}

let spec ~name ?(privileged = true) ?(weight = 256) make =
  { ds_name = name; ds_privileged = privileged; ds_weight = weight; ds_make = make }

type entry = {
  e_spec : spec;
  mutable e_domid : Hcall.domid;
  mutable e_generation : int;
  mutable e_recent : int64 list;
      (** Rebuild times still inside the rate-limit window, newest
          first. *)
}

type t = {
  mutable entries : entry list;
  mutable t_restarts : (string * int64) list;  (** Newest first. *)
  t_stop : bool ref;
}

let create () = { entries = []; t_restarts = []; t_stop = ref false }
let stop t = t.t_stop := true
let restarts t = List.rev t.t_restarts

let entry_for t name =
  List.find_opt (fun e -> e.e_spec.ds_name = name) t.entries

let domid t name = Option.map (fun e -> e.e_domid) (entry_for t name)
let generation t name = Option.map (fun e -> e.e_generation) (entry_for t name)
let built t = t.entries <> []

let toolstack_body mach t ?restart_limit ~period specs () =
  let counters = mach.Machine.counters in
  t.entries <-
    List.map
      (fun s ->
        let domid =
          Hcall.dom_create ~name:s.ds_name ~privileged:s.ds_privileged
            ~weight:s.ds_weight (s.ds_make ~restart:0)
        in
        Counter.incr counters "toolstack.built";
        { e_spec = s; e_domid = domid; e_generation = 0; e_recent = [] })
      specs;
  (* Sliding-window rate limit: a crash-looping driver domain must not
     turn the toolstack into a fork bomb. A suppressed rebuild is only
     deferred — once enough of the window slides past, the next liveness
     poll rebuilds as usual. *)
  let may_restart e ~now =
    match restart_limit with
    | None -> true
    | Some (burst, window) ->
        e.e_recent <-
          List.filter
            (fun at -> Int64.compare (Int64.sub now at) window < 0)
            e.e_recent;
        List.length e.e_recent < burst
  in
  let rec loop () =
    if !(t.t_stop) then Hcall.exit ()
    else begin
      (match Hcall.block ~timeout:period () with
      | Hcall.Events _ | Hcall.Timed_out -> ());
      if !(t.t_stop) then Hcall.exit ();
      List.iter
        (fun e ->
          if not (Hcall.dom_alive e.e_domid) then begin
            let now = Engine.now mach.Machine.engine in
            if may_restart e ~now then begin
              e.e_generation <- e.e_generation + 1;
              let domid =
                Hcall.dom_create ~name:e.e_spec.ds_name
                  ~privileged:e.e_spec.ds_privileged ~weight:e.e_spec.ds_weight
                  (e.e_spec.ds_make ~restart:e.e_generation)
              in
              e.e_domid <- domid;
              e.e_recent <- now :: e.e_recent;
              t.t_restarts <-
                (e.e_spec.ds_name, now) :: t.t_restarts;
              Counter.incr counters "toolstack.restart"
            end
            else Counter.incr counters "toolstack.rate_limited"
          end)
        t.entries;
      loop ()
    end
  in
  loop ()
