(** Hypervisor path-length constants.

    Each VMM primitive has its own code path (and so its own i-cache
    region, see {!icache_regions}); the paper's §2.2 point is precisely
    this multiplicity versus the microkernel's single IPC path. Values
    are calibrated against Xen 2.x-era measurements: hypercalls are a few
    hundred cycles of hypervisor work, a grant-map costs page-table
    manipulation, a page flip costs two address-space updates plus
    accounting. *)

val hypercall_fixed : int
(** Entry/exit and dispatch for any hypercall, on top of the hardware
    trap cost. *)

val evtchn_send : int
(** Marking a remote port pending and kicking the scheduler. *)

val upcall : int
(** Delivering pending events into a resuming guest. *)

val grant_check : int
(** Grant-table entry validation. *)

val page_flip_fixed : int
(** Transfer bookkeeping per page flip, excluding PTE/TLB costs — the
    per-operation cost [CG05] found Dom0 CPU proportional to. *)

val pt_validate : int
(** Validating one guest page-table update. *)

val shadow_sync : int
(** Decoding a faulting guest PTE write and updating the shadow table
    (full-virtualisation mode, ablation A6). *)

val syscall_bounce : int
(** Hypervisor work to reflect a guest syscall into the guest kernel. *)

val irq_route : int
(** Routing a physical IRQ to a driver domain's port. *)

val domain_build : int
(** Toolstack-requested domain construction ([H_dom_create]): allocating
    the domain structure, its address space and its event-channel table.
    Dwarfed by what a real builder pays to load a kernel image, but
    enough that restarting a driver domain is visibly not free. *)

val icache_regions : (string * int) list
(** [(region, lines)] touched by each primitive path (experiment E9);
    regions are disjoint — that is the point. *)

val icache_lines_for : string -> int
(** Lines for one region; [0] if unknown. *)
