let hypercall_fixed = 210
let evtchn_send = 140
let upcall = 260
let grant_check = 60
let page_flip_fixed = 330
let pt_validate = 150
let shadow_sync = 420
let syscall_bounce = 380
let irq_route = 170
let domain_build = 5_000

let icache_regions =
  [
    ("vmm.hcall.dispatch", 6);
    ("vmm.hcall.sched", 10);
    ("vmm.hcall.evtchn", 12);
    ("vmm.hcall.grant_map", 16);
    ("vmm.hcall.grant_transfer", 18);
    ("vmm.hcall.pt", 20);
    ("vmm.hcall.trap", 9);
    ("vmm.hcall.memory", 11);
    ("vmm.hcall.irq", 8);
    ("vmm.hcall.syscall_bounce", 13);
    ("vmm.hcall.domctl", 14);
  ]

let icache_lines_for region =
  match List.assoc_opt region icache_regions with Some n -> n | None -> 0
