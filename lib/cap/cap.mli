(** Stack-agnostic capability layer (E19).

    A capability names an object (an opaque integer chosen by the
    embedder: a page identity, a grant reference, a service) and carries
    a rights mask. Capabilities live in per-protection-domain handle
    tables and form an explicit derivation tree per object: {!derive}
    creates a child whose rights are the intersection of the requested
    mask and the parent's (a child can never gain a right its parent
    lacks), and {!revoke} tears down an entire derivation subtree
    recursively, invoking the embedder's callback once per capability so
    mappings, grants or sessions backed by the caps can be dismantled in
    the same pass.

    The layer is deliberately mechanism-free: it owns no page tables and
    no grant entries. The microkernel drives {!Vmk_ukernel.Mapdb} page
    removal from the revoke callback; the VMM force-unmaps outstanding
    grant mappings from it. Both charge cycles through the [burn]
    callback supplied at {!create}.

    Accounting (all under the machine's counters): ["cap.minted"],
    ["cap.derived"], ["cap.granted"], ["cap.lookups"], ["cap.denied"],
    ["cap.quota_denied"], ["cap.revoked"], ["cap.revoke_calls"] and the
    per-teardown depth histogram
    ["cap.revoke_depth.le_1" … "cap.revoke_depth.gt_8"]. *)

(** {1 Rights} *)

type rights = int
(** A bitmask of the five rights below. *)

val r_read : rights
val r_write : rights
val r_map : rights
(** Right to install the object into another protection domain
    (memory map / grant-map paths). *)

val r_derive : rights
(** Right to create child capabilities. *)

val r_revoke : rights
(** Right to tear down this capability's derivation subtree. *)

val r_full : rights
(** All five rights. *)

val has : rights -> rights -> bool
(** [has mask need] is true iff every bit of [need] is in [mask]. *)

val pp_rights : Format.formatter -> rights -> unit
(** Prints e.g. ["rw-dv"]. *)

(** {1 Tables} *)

type t
(** All handle tables of one machine (one per protection domain,
    created on demand). *)

type handle = int

type info = {
  i_dom : int;  (** Owning protection domain. *)
  i_handle : handle;
  i_obj : int;  (** The object this capability names. *)
  i_rights : rights;
}

val create :
  counters:Vmk_trace.Counter.set ->
  ?burn:(int -> unit) ->
  ?lookup_cost:int ->
  ?derive_cost:int ->
  ?revoke_step_cost:int ->
  unit ->
  t
(** [burn] charges cycles to whatever account is active at the call
    site; it defaults to a no-op (pure bookkeeping, e.g. unit tests). *)

(** {1 Quotas}

    A per-domain cap on handle-table size (E19 follow-on). Every
    operation that would create a handle in a domain past its quota
    fails closed: {!derive} and {!grant} return [`Quota], {!mint} —
    the kernel-internal path, whose callers are expected to
    {!check_quota} first — raises {!Quota_exceeded} as a backstop.
    Each refusal counts ["cap.quota_denied"]. *)

exception Quota_exceeded of { q_dom : int; q_limit : int }

val set_quota : t -> dom:int -> int option -> unit
(** [Some n] caps [dom]'s live handles at [n] ([n ≥ 0]); [None] removes
    the cap (the default — domains are unmetered until opted in). The
    quota is not retroactive: a table already over a newly-set limit
    keeps its handles, but cannot gain more until it drops below. *)

val quota : t -> dom:int -> int option

val quota_room : t -> dom:int -> n:int -> bool
(** Would [n] more handles fit under [dom]'s quota? Uncounted — use
    {!check_quota} on enforcement paths. *)

val check_quota : t -> dom:int -> n:int -> bool
(** {!quota_room}, counting ["cap.quota_denied"] on refusal. Callers
    that create several caps in one operation (e.g. a multi-page
    [alloc_pages]) should check the whole batch up front so the
    operation fails closed rather than half-applied. *)

(** {1 Operations} *)

val mint : t -> dom:int -> obj:int -> rights:rights -> handle
(** A fresh root capability in [dom]'s table.
    @raise Quota_exceeded when [dom] is at its quota. *)

val lookup : t -> dom:int -> handle:handle -> info option
(** Counted under ["cap.lookups"]. *)

val check : t -> dom:int -> handle:handle -> need:rights -> bool
(** Validate a presented handle: the capability exists in [dom]'s table
    and carries every bit of [need]. A failure counts ["cap.denied"]. *)

val derive :
  t ->
  dom:int ->
  handle:handle ->
  to_dom:int ->
  obj:int ->
  rights:rights ->
  (handle, [ `No_cap | `Denied | `Quota ]) result
(** Child capability in [to_dom]'s table, rights masked by the parent's
    ([rights land parent]); requires [r_derive] on the parent. The new
    cap is a tree child of [handle], so revoking the parent kills it.
    [`Quota] when [to_dom] is at its handle quota. *)

val grant :
  t ->
  dom:int ->
  handle:handle ->
  to_dom:int ->
  obj:int ->
  (handle, [ `No_cap | `Quota ]) result
(** Move semantics: the capability transfers to [to_dom] (renamed to
    [obj]), taking the source's place in the derivation tree — parent
    and children are preserved, the source handle dies. Mirrors
    {!Vmk_ukernel.Mapdb.map} with [grant:true]. [`Quota] when [to_dom]
    is at its handle quota (the source slot only frees on success). *)

type revoke_stats = {
  r_removed : int;  (** Capabilities torn down, including the root iff [self]. *)
  r_max_depth : int;  (** Deepest subtree level removed (root = 0). *)
}

val revoke :
  t ->
  dom:int ->
  handle:handle ->
  self:bool ->
  on_revoke:(info -> depth:int -> unit) ->
  (revoke_stats, [ `No_cap | `Denied ]) result
(** Recursively tear down the derivation subtree below [handle]
    (children first), plus [handle] itself when [self]. Requires
    [r_revoke]. [on_revoke] fires once per removed capability after it
    has left the tables, with its relative depth ([0] = the revoked root
    itself, [1] = direct children, …) so the embedder can distinguish
    the voluntary root from collateral teardown. *)

val revoke_dom : t -> dom:int -> on_revoke:(info -> depth:int -> unit) -> revoke_stats
(** Kernel-authority teardown of every capability [dom] owns (and, through
    the trees, everything derived from them) — protection-domain death. *)

(** {1 Introspection} *)

val find_obj : t -> obj:int -> info option
(** The capability currently registered for [obj], if any. Reliable only
    for object namespaces the embedder keeps unique per live capability
    (page identities, grant references); uncounted. *)

val depth : t -> dom:int -> handle:handle -> int option
(** Distance from the derivation root (roots are [0]). *)

val count : t -> int
(** Live capabilities across all domains. *)

val dom_count : t -> dom:int -> int

val handles : t -> dom:int -> handle list
(** Sorted ascending. *)
