module Counter = Vmk_trace.Counter

(* --- rights --- *)

type rights = int

let r_read = 1
let r_write = 2
let r_map = 4
let r_derive = 8
let r_revoke = 16
let r_full = r_read lor r_write lor r_map lor r_derive lor r_revoke
let has mask need = mask land need = need

let pp_rights ppf r =
  let bit b c = if has r b then c else '-' in
  Format.fprintf ppf "%c%c%c%c%c" (bit r_read 'r') (bit r_write 'w')
    (bit r_map 'm') (bit r_derive 'd') (bit r_revoke 'v')

(* --- tables --- *)

type handle = int

type info = { i_dom : int; i_handle : handle; i_obj : int; i_rights : rights }

type node = {
  n_dom : int;
  n_handle : handle;
  n_obj : int;
  n_rights : rights;
  mutable n_parent : node option;
  mutable n_children : node list;  (** Newest first; order is part of replay. *)
}

type t = {
  tables : (int, (handle, node) Hashtbl.t) Hashtbl.t;
  by_obj : (int, node) Hashtbl.t;
      (** Object -> live capability; meaningful only for namespaces the
          embedder keeps unique (page identities, grant refs). *)
  quotas : (int, int) Hashtbl.t;  (** Domain -> handle-table cap. *)
  counters : Counter.set;
  burn : int -> unit;
  lookup_cost : int;
  derive_cost : int;
  revoke_step_cost : int;
  mutable next_handle : handle;
}

exception Quota_exceeded of { q_dom : int; q_limit : int }

let create ~counters ?(burn = fun _ -> ()) ?(lookup_cost = 40)
    ?(derive_cost = 90) ?(revoke_step_cost = 120) () =
  {
    tables = Hashtbl.create 16;
    by_obj = Hashtbl.create 64;
    quotas = Hashtbl.create 8;
    counters;
    burn;
    lookup_cost;
    derive_cost;
    revoke_step_cost;
    next_handle = 1;
  }

let table_for t dom =
  match Hashtbl.find_opt t.tables dom with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 16 in
      Hashtbl.add t.tables dom tbl;
      tbl

let info_of n =
  { i_dom = n.n_dom; i_handle = n.n_handle; i_obj = n.n_obj; i_rights = n.n_rights }

let fresh_handle t =
  let h = t.next_handle in
  t.next_handle <- t.next_handle + 1;
  h

let register t node =
  Hashtbl.replace (table_for t node.n_dom) node.n_handle node;
  Hashtbl.replace t.by_obj node.n_obj node

let unregister t node =
  (match Hashtbl.find_opt t.tables node.n_dom with
  | Some tbl -> Hashtbl.remove tbl node.n_handle
  | None -> ());
  (* Only drop the object index if it still points at this node; a user
     object namespace may have been shadowed by a later mint. *)
  match Hashtbl.find_opt t.by_obj node.n_obj with
  | Some n when n == node -> Hashtbl.remove t.by_obj node.n_obj
  | Some _ | None -> ()

let find_node t ~dom ~handle =
  Option.bind (Hashtbl.find_opt t.tables dom) (fun tbl ->
      Hashtbl.find_opt tbl handle)

(* --- quotas --- *)

let live_count t dom =
  match Hashtbl.find_opt t.tables dom with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let set_quota t ~dom limit =
  match limit with
  | None -> Hashtbl.remove t.quotas dom
  | Some n ->
      if n < 0 then invalid_arg "Cap.set_quota: negative limit";
      Hashtbl.replace t.quotas dom n

let quota t ~dom = Hashtbl.find_opt t.quotas dom

let quota_room t ~dom ~n =
  match Hashtbl.find_opt t.quotas dom with
  | None -> true
  | Some limit -> live_count t dom + n <= limit

let check_quota t ~dom ~n =
  quota_room t ~dom ~n
  ||
  (Counter.incr t.counters "cap.quota_denied";
   false)

(* --- operations --- *)

let mint t ~dom ~obj ~rights =
  if not (check_quota t ~dom ~n:1) then
    raise
      (Quota_exceeded
         { q_dom = dom; q_limit = Option.value ~default:0 (quota t ~dom) });
  t.burn t.derive_cost;
  Counter.incr t.counters "cap.minted";
  let node =
    {
      n_dom = dom;
      n_handle = fresh_handle t;
      n_obj = obj;
      n_rights = rights land r_full;
      n_parent = None;
      n_children = [];
    }
  in
  register t node;
  node.n_handle

let lookup t ~dom ~handle =
  t.burn t.lookup_cost;
  Counter.incr t.counters "cap.lookups";
  Option.map info_of (find_node t ~dom ~handle)

let check t ~dom ~handle ~need =
  t.burn t.lookup_cost;
  Counter.incr t.counters "cap.lookups";
  match find_node t ~dom ~handle with
  | Some node when has node.n_rights need -> true
  | Some _ | None ->
      Counter.incr t.counters "cap.denied";
      false

let derive t ~dom ~handle ~to_dom ~obj ~rights =
  t.burn t.lookup_cost;
  Counter.incr t.counters "cap.lookups";
  match find_node t ~dom ~handle with
  | None ->
      Counter.incr t.counters "cap.denied";
      Error `No_cap
  | Some parent ->
      if not (has parent.n_rights r_derive) then begin
        Counter.incr t.counters "cap.denied";
        Error `Denied
      end
      else if not (check_quota t ~dom:to_dom ~n:1) then Error `Quota
      else begin
        t.burn t.derive_cost;
        Counter.incr t.counters "cap.derived";
        let node =
          {
            n_dom = to_dom;
            n_handle = fresh_handle t;
            n_obj = obj;
            (* Monotonicity: a child never gains a right its parent lacks. *)
            n_rights = rights land parent.n_rights;
            n_parent = Some parent;
            n_children = [];
          }
        in
        parent.n_children <- node :: parent.n_children;
        register t node;
        Ok node.n_handle
      end

let grant t ~dom ~handle ~to_dom ~obj =
  t.burn t.lookup_cost;
  Counter.incr t.counters "cap.lookups";
  match find_node t ~dom ~handle with
  | None ->
      Counter.incr t.counters "cap.denied";
      Error `No_cap
  | Some src ->
      (* A grant moves the handle: the source slot frees, the destination
         slot fills — only the destination's quota can be exceeded. *)
      if to_dom <> dom && not (check_quota t ~dom:to_dom ~n:1) then
        Error `Quota
      else begin
      t.burn t.derive_cost;
      Counter.incr t.counters "cap.granted";
      let node =
        {
          n_dom = to_dom;
          n_handle = fresh_handle t;
          n_obj = obj;
          n_rights = src.n_rights;
          n_parent = src.n_parent;
          n_children = src.n_children;
        }
      in
      (* The destination takes the source's place in the derivation tree. *)
      (match src.n_parent with
      | Some p ->
          p.n_children <-
            node :: List.filter (fun c -> c != src) p.n_children
      | None -> ());
      List.iter (fun c -> c.n_parent <- Some node) src.n_children;
      src.n_children <- [];
      unregister t src;
      register t node;
      Ok node.n_handle
      end

(* --- revocation --- *)

type revoke_stats = { r_removed : int; r_max_depth : int }

let depth_bucket d =
  if d <= 1 then "cap.revoke_depth.le_1"
  else if d <= 2 then "cap.revoke_depth.le_2"
  else if d <= 4 then "cap.revoke_depth.le_4"
  else if d <= 8 then "cap.revoke_depth.le_8"
  else "cap.revoke_depth.gt_8"

let detach_from_parent node =
  match node.n_parent with
  | None -> ()
  | Some p ->
      p.n_children <- List.filter (fun c -> c != node) p.n_children;
      node.n_parent <- None

let rec teardown t ~on_revoke ~removed ~maxd node ~depth =
  (* Children first: when the hook fires for a capability, everything
     derived from it is already gone. *)
  List.iter
    (fun c -> teardown t ~on_revoke ~removed ~maxd c ~depth:(depth + 1))
    node.n_children;
  node.n_children <- [];
  unregister t node;
  t.burn t.revoke_step_cost;
  Counter.incr t.counters "cap.revoked";
  incr removed;
  if depth > !maxd then maxd := depth;
  on_revoke (info_of node) ~depth

let finish_revoke t ~removed ~maxd =
  Counter.incr t.counters "cap.revoke_calls";
  Counter.incr t.counters (depth_bucket !maxd);
  { r_removed = !removed; r_max_depth = !maxd }

let revoke t ~dom ~handle ~self ~on_revoke =
  t.burn t.lookup_cost;
  Counter.incr t.counters "cap.lookups";
  match find_node t ~dom ~handle with
  | None ->
      Counter.incr t.counters "cap.denied";
      Error `No_cap
  | Some node ->
      if not (has node.n_rights r_revoke) then begin
        Counter.incr t.counters "cap.denied";
        Error `Denied
      end
      else begin
        let removed = ref 0 and maxd = ref 0 in
        if self then begin
          detach_from_parent node;
          teardown t ~on_revoke ~removed ~maxd node ~depth:0
        end
        else begin
          List.iter
            (fun c -> teardown t ~on_revoke ~removed ~maxd c ~depth:1)
            node.n_children;
          node.n_children <- []
        end;
        Ok (finish_revoke t ~removed ~maxd)
      end

let revoke_dom t ~dom ~on_revoke =
  match Hashtbl.find_opt t.tables dom with
  | None -> { r_removed = 0; r_max_depth = 0 }
  | Some tbl ->
      let removed = ref 0 and maxd = ref 0 in
      let victims =
        List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) tbl [])
      in
      List.iter
        (fun h ->
          (* An earlier teardown may already have consumed this handle
             (a cap derived from another cap of the same domain). *)
          match Hashtbl.find_opt tbl h with
          | None -> ()
          | Some node ->
              detach_from_parent node;
              teardown t ~on_revoke ~removed ~maxd node ~depth:0)
        victims;
      if !removed > 0 then ignore (finish_revoke t ~removed ~maxd);
      { r_removed = !removed; r_max_depth = !maxd }

(* --- introspection --- *)

let find_obj t ~obj = Option.map info_of (Hashtbl.find_opt t.by_obj obj)

let depth t ~dom ~handle =
  match find_node t ~dom ~handle with
  | None -> None
  | Some node ->
      let rec up n acc =
        match n.n_parent with None -> acc | Some p -> up p (acc + 1)
      in
      Some (up node 0)

let count t =
  Hashtbl.fold (fun _ tbl acc -> acc + Hashtbl.length tbl) t.tables 0

let dom_count t ~dom =
  match Hashtbl.find_opt t.tables dom with
  | Some tbl -> Hashtbl.length tbl
  | None -> 0

let handles t ~dom =
  match Hashtbl.find_opt t.tables dom with
  | None -> []
  | Some tbl -> List.sort compare (Hashtbl.fold (fun h _ acc -> h :: acc) tbl [])
